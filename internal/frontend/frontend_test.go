package frontend

import (
	"strings"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/codegen"
	"paradigm/internal/kernels"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/mdg"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
	"paradigm/internal/trainsets"
)

func cal(t testing.TB) *trainsets.Calibration {
	t.Helper()
	c, err := trainsets.Calibrate(machine.CM5(16))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const goodProgram = `
# complex-ish test program
param n = 16

matrix A = init(n, n, ramp)
matrix B = init(n, n, wave)   @ col
matrix C = A * B
matrix D = C + A
matrix E = D - B              @ col
`

func TestLexBasics(t *testing.T) {
	toks, err := lex("matrix A = init(4, 4, ones)\n")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokIdent, tokEquals, tokIdent, tokLParen,
		tokNumber, tokComma, tokNumber, tokComma, tokIdent, tokRParen, tokNewline, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexCommentsAndBlankLines(t *testing.T) {
	toks, err := lex("# comment only\n\n\nparam x = 1\n# trailing")
	if err != nil {
		t.Fatal(err)
	}
	// No leading newline tokens; one statement.
	if toks[0].kind != tokIdent || toks[0].text != "param" {
		t.Fatalf("first token = %+v", toks[0])
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := lex("matrix A = $\n"); err == nil {
		t.Fatal("want error for '$'")
	}
}

func TestCompileGoodProgram(t *testing.T) {
	p, err := Compile("good", goodProgram, cal(t))
	if err != nil {
		t.Fatal(err)
	}
	// 5 computation nodes + START/STOP.
	real := 0
	for _, spec := range p.Specs {
		if spec.Kernel.Op != kernels.OpNone {
			real++
		}
	}
	if real != 5 {
		t.Fatalf("computation nodes = %d, want 5", real)
	}
	// B is col-distributed, C row-distributed: the B->C edge must be 2D.
	bID, _ := p.Producer("B")
	cID, _ := p.Producer("C")
	e, ok := p.G.EdgeBetween(bID, cID)
	if !ok || e.Transfers[0].Kind != mdg.Transfer2D {
		t.Fatalf("B->C edge = %+v ok=%v", e, ok)
	}
	// A->C is row->row: 1D.
	aID, _ := p.Producer("A")
	e, ok = p.G.EdgeBetween(aID, cID)
	if !ok || e.Transfers[0].Kind != mdg.Transfer1D {
		t.Fatalf("A->C edge = %+v", e)
	}
}

func TestCompiledProgramRunsAndVerifies(t *testing.T) {
	c := cal(t)
	p, err := Compile("good", goodProgram, c)
	if err != nil {
		t.Fatal(err)
	}
	model := c.Model()
	ar, err := alloc.Solve(p.G, model, 8, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(p.G, model, ar.P, 8, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	for name := range p.Arrays {
		got, err := res.Gather(name)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(got, ref[name], 1e-9) {
			t.Fatalf("array %q differs from reference", name)
		}
	}
}

func TestIdentityGenerator(t *testing.T) {
	src := `
matrix A = init(8, 8, wave)
matrix I = init(8, 8, ident)
matrix B = A * I
`
	p, err := Compile("ident", src, cal(t))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(ref["B"], ref["A"], 1e-12) {
		t.Fatal("A * I != A")
	}
}

func TestRectangularMultiply(t *testing.T) {
	src := `
matrix A = init(4, 8, ramp)
matrix B = init(8, 2, wave)
matrix C = A * B
`
	p, err := Compile("rect", src, cal(t))
	if err != nil {
		t.Fatal(err)
	}
	arr := p.Arrays["C"]
	if arr.Rows != 4 || arr.Cols != 2 {
		t.Fatalf("C is %dx%d, want 4x2", arr.Rows, arr.Cols)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := map[string]string{
		"undefined matrix":    "matrix C = A + B\n",
		"undefined param":     "matrix A = init(n, 4, ones)\n",
		"shape mismatch":      "matrix A = init(2, 2, ones)\nmatrix B = init(3, 3, ones)\nmatrix C = A + B\n",
		"inner dim mismatch":  "matrix A = init(2, 3, ones)\nmatrix B = init(4, 2, ones)\nmatrix C = A * B\n",
		"matrix redefined":    "matrix A = init(2, 2, ones)\nmatrix A = init(2, 2, ones)\n",
		"param redefined":     "param n = 4\nparam n = 8\n",
		"param shadows":       "param n = 4\nmatrix n = init(2, 2, ones)\n",
		"matrix shadows":      "matrix n = init(2, 2, ones)\nparam n = 4\n",
		"reserved word":       "matrix init = init(2, 2, ones)\n",
		"bad generator":       "matrix A = init(2, 2, zeros)\n",
		"bad axis":            "matrix A = init(2, 2, ones) @ diagonal\n",
		"zero size":           "matrix A = init(0, 2, ones)\n",
		"zero param":          "param n = 0\n",
		"missing operator":    "matrix A = init(2, 2, ones)\nmatrix B = A A\n",
		"statement keyword":   "banana A = init(2, 2, ones)\n",
		"empty program":       "# nothing here\n",
		"keyword as size":     "matrix A = init(row, 2, ones)\n",
		"garbage after stmt":  "param n = 4 extra\n",
		"init missing parens": "matrix A = init 2, 2, ones\n",
	}
	c := cal(t)
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Compile(name, src, c); err == nil {
				t.Fatalf("program compiled but should not:\n%s", src)
			}
		})
	}
}

func TestErrorMessagesCarryLineNumbers(t *testing.T) {
	src := "param n = 4\nmatrix A = init(n, n, ones)\nmatrix B = A + C\n"
	_, err := Compile("lines", src, cal(t))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3 reference", err)
	}
}

func TestSubSharesAddCalibration(t *testing.T) {
	// Subtraction must reuse the addition cost fit (same loop shape).
	c := cal(t)
	src := "matrix A = init(8, 8, ones)\nmatrix B = init(8, 8, wave)\nmatrix C = A - B\n"
	p, err := Compile("sub", src, c)
	if err != nil {
		t.Fatal(err)
	}
	var subNode mdg.NodeID = -1
	for i, spec := range p.Specs {
		if spec.Kernel.Op == kernels.OpSub {
			subNode = mdg.NodeID(i)
		}
	}
	if subNode < 0 {
		t.Fatal("no sub node")
	}
	if p.G.Nodes[subNode].Tau <= 0 {
		t.Fatal("sub node has no calibrated cost")
	}
}

func BenchmarkCompile(b *testing.B) {
	c := cal(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile("bench", goodProgram, c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBinaryInheritsLeftOperandAxis(t *testing.T) {
	src := `
matrix A = init(8, 8, ones) @ col
matrix B = init(8, 8, wave)
matrix C = A + B
`
	p, err := Compile("inherit", src, cal(t))
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := p.Producer("A")
	cID, _ := p.Producer("C")
	// C inherits A's col axis: the A->C transfer is 1D, B->C is 2D.
	eA, _ := p.G.EdgeBetween(aID, cID)
	if eA.Transfers[0].Kind != mdg.Transfer1D {
		t.Fatalf("A->C kind = %v, want 1D (axis inherited)", eA.Transfers[0].Kind)
	}
	bID, _ := p.Producer("B")
	eB, _ := p.G.EdgeBetween(bID, cID)
	if eB.Transfers[0].Kind != mdg.Transfer2D {
		t.Fatalf("B->C kind = %v, want 2D", eB.Transfers[0].Kind)
	}
}

func TestGridAxisAnnotation(t *testing.T) {
	src := `
matrix A = init(16, 16, ramp)
matrix B = init(16, 16, wave)
matrix C = A * B @ grid
matrix D = C + A @ row
`
	p, err := Compile("grid", src, cal(t))
	if err != nil {
		t.Fatal(err)
	}
	aID, _ := p.Producer("A")
	cID, _ := p.Producer("C")
	e, _ := p.G.EdgeBetween(aID, cID)
	if e.Transfers[0].Kind != mdg.TransferL2G {
		t.Fatalf("A->C kind = %v, want L2G", e.Transfers[0].Kind)
	}
	dID, _ := p.Producer("D")
	e, _ = p.G.EdgeBetween(cID, dID)
	if e.Transfers[0].Kind != mdg.TransferG2L {
		t.Fatalf("C->D kind = %v, want G2L", e.Transfers[0].Kind)
	}
	if _, err := p.ReferenceRun(); err != nil {
		t.Fatal(err)
	}
}

func TestExpressionStatements(t *testing.T) {
	src := `
param n = 12
matrix A = init(n, n, ramp)
matrix B = init(n, n, wave)
matrix C = init(n, n, ones)
matrix D = (A + B) * C - A * B
`
	c := cal(t)
	p, err := Compile("expr", src, c)
	if err != nil {
		t.Fatal(err)
	}
	// Temporaries: (A+B), (A+B)*C, A*B, then the final sub = 4 new nodes.
	real := 0
	for _, spec := range p.Specs {
		if spec.Kernel.Op != kernels.OpNone {
			real++
		}
	}
	if real != 3+4 {
		t.Fatalf("computation nodes = %d, want 7", real)
	}
	ref, err := p.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	// Independent oracle: compute (A+B)*C - A*B directly.
	a, b2, c2 := ref["A"], ref["B"], ref["C"]
	n := a.Rows
	ab := matrix.New(n, n)
	if err := matrix.Add(ab, a, b2); err != nil {
		t.Fatal(err)
	}
	abc := matrix.New(n, n)
	if err := matrix.Mul(abc, ab, c2); err != nil {
		t.Fatal(err)
	}
	axb := matrix.New(n, n)
	if err := matrix.Mul(axb, a, b2); err != nil {
		t.Fatal(err)
	}
	want := matrix.New(n, n)
	if err := matrix.Sub(want, abc, axb); err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(ref["D"], want, 1e-9) {
		t.Fatal("expression result wrong")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	// A + B * C must parse as A + (B*C): result shape check suffices for
	// rectangular operands where the other association is ill-shaped.
	src := `
matrix A = init(4, 6, ramp)
matrix B = init(4, 8, wave)
matrix C = init(8, 6, ones)
matrix D = A + B * C
`
	p, err := Compile("prec", src, cal(t))
	if err != nil {
		t.Fatal(err)
	}
	arr := p.Arrays["D"]
	if arr.Rows != 4 || arr.Cols != 6 {
		t.Fatalf("D is %dx%d", arr.Rows, arr.Cols)
	}
	// (A + B) would be a shape error, so success proves precedence.
}

func TestExpressionSimulatedEndToEnd(t *testing.T) {
	src := `
param n = 16
matrix A = init(n, n, ramp)
matrix B = init(n, n, wave)
matrix D = (A - B) * (A + B) @ col
`
	c := cal(t)
	p, err := Compile("expr-sim", src, c)
	if err != nil {
		t.Fatal(err)
	}
	model := c.Model()
	ar, err := alloc.Solve(p.G, model, 8, alloc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Run(p.G, model, ar.P, 8, sched.Options{})
	if err != nil {
		t.Fatal(err)
	}
	streams, err := codegen.Generate(p, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(p, streams, machine.CM5(8))
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := p.ReferenceRun()
	got, err := res.Gather("D")
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, ref["D"], 1e-9) {
		t.Fatal("simulated expression program wrong")
	}
}

func TestExpressionErrors(t *testing.T) {
	c := cal(t)
	cases := map[string]string{
		"alias":            "matrix A = init(2, 2, ones)\nmatrix B = A\n",
		"unbalanced paren": "matrix A = init(2, 2, ones)\nmatrix B = (A + A\n",
		"dangling op":      "matrix A = init(2, 2, ones)\nmatrix B = A +\n",
		"inner shape":      "matrix A = init(2, 2, ones)\nmatrix B = init(3, 3, ones)\nmatrix C = (A + B) * A\n",
		"keyword factor":   "matrix A = init(2, 2, ones)\nmatrix B = A + row\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Compile(name, src, c); err == nil {
				t.Fatalf("compiled but should not:\n%s", src)
			}
		})
	}
}
