package frontend

import (
	"fmt"
	"math"
	"strconv"
)

// genKind enumerates the built-in matrix generators.
type genKind uint8

const (
	genRamp genKind = iota
	genWave
	genOnes
	genIdent
)

// generator returns the element function of a generator. phase
// disambiguates multiple generators of the same kind so distinct
// matrices hold distinct values.
func (g genKind) generator(phase int) func(i, j int) float64 {
	switch g {
	case genRamp:
		return func(i, j int) float64 { return float64(i+2*j+phase) / 64 }
	case genWave:
		return func(i, j int) float64 { return math.Sin(float64(3*i-j) / 11.0 * float64(phase+1)) }
	case genOnes:
		return func(i, j int) float64 { return 1 }
	case genIdent:
		return func(i, j int) float64 {
			if i == j {
				return 1
			}
			return 0
		}
	default:
		panic(fmt.Sprintf("frontend: unknown generator %d", g))
	}
}

// stmtKind enumerates statement types.
type stmtKind uint8

const (
	stmtParam stmtKind = iota
	stmtInit
	stmtExpr
)

// opKind enumerates binary matrix operators.
type opKind uint8

const (
	opAdd opKind = iota
	opSub
	opMul
)

// exprNode is a parsed right-hand-side expression: either a matrix
// reference or a binary operation. Multiplication binds tighter than
// addition and subtraction; parentheses group.
type exprNode interface{ isExpr() }

// exprName references a defined matrix.
type exprName struct {
	name string
	line int
}

// exprBin is a binary operation over two subexpressions.
type exprBin struct {
	op   opKind
	l, r exprNode
	line int
}

func (exprName) isExpr() {}
func (exprBin) isExpr()  {}

// stmt is one parsed statement.
type stmt struct {
	kind stmtKind
	line int
	name string

	// stmtParam
	value int

	// stmtInit: rows/cols are identifiers or literals resolved later.
	rows, cols operand
	gen        genKind

	// stmtExpr
	expr         exprNode
	axisCol      bool // "@ col" annotation
	axisGrid     bool // "@ grid" annotation (the 2D-distribution extension)
	axisExplicit bool
}

// operand is either an integer literal or a param reference.
type operand struct {
	lit   int
	ref   string
	isRef bool
}

// parser consumes the token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) expect(k tokenKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("frontend: line %d: expected %s, got %s", t.line, k, describe(t))
	}
	return t, nil
}

// parse builds the statement list.
func parse(toks []token) ([]stmt, error) {
	p := &parser{toks: toks}
	var stmts []stmt
	for {
		t := p.peek()
		switch t.kind {
		case tokEOF:
			return stmts, nil
		case tokNewline:
			p.next()
			continue
		case tokIdent:
			switch t.text {
			case "param":
				s, err := p.parseParam()
				if err != nil {
					return nil, err
				}
				stmts = append(stmts, s)
			case "matrix":
				s, err := p.parseMatrix()
				if err != nil {
					return nil, err
				}
				stmts = append(stmts, s)
			default:
				return nil, fmt.Errorf("frontend: line %d: expected 'param' or 'matrix', got %s", t.line, describe(t))
			}
		default:
			return nil, fmt.Errorf("frontend: line %d: expected statement, got %s", t.line, describe(t))
		}
	}
}

func (p *parser) parseName() (token, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return t, err
	}
	if isKeyword(t.text) {
		return t, fmt.Errorf("frontend: line %d: %q is a reserved word", t.line, t.text)
	}
	return t, nil
}

// parseParam: param <name> = <number> \n
func (p *parser) parseParam() (stmt, error) {
	kw := p.next() // 'param'
	name, err := p.parseName()
	if err != nil {
		return stmt{}, err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return stmt{}, err
	}
	num, err := p.expect(tokNumber)
	if err != nil {
		return stmt{}, err
	}
	v, err := strconv.Atoi(num.text)
	if err != nil || v <= 0 {
		return stmt{}, fmt.Errorf("frontend: line %d: invalid param value %q", num.line, num.text)
	}
	if _, err := p.expect(tokNewline); err != nil {
		return stmt{}, err
	}
	return stmt{kind: stmtParam, line: kw.line, name: name.text, value: v}, nil
}

// parseOperandInt: a number or a param reference.
func (p *parser) parseOperandInt() (operand, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		v, err := strconv.Atoi(t.text)
		if err != nil || v <= 0 {
			return operand{}, fmt.Errorf("frontend: line %d: invalid size %q", t.line, t.text)
		}
		return operand{lit: v}, nil
	case tokIdent:
		if isKeyword(t.text) {
			return operand{}, fmt.Errorf("frontend: line %d: %q cannot be a size", t.line, t.text)
		}
		return operand{ref: t.text, isRef: true}, nil
	default:
		return operand{}, fmt.Errorf("frontend: line %d: expected size, got %s", t.line, describe(t))
	}
}

// parseMatrix: matrix <name> = init(r, c, gen) [@ axis] \n
//
//	| matrix <name> = <name> (+|-|*) <name> [@ axis] \n
func (p *parser) parseMatrix() (stmt, error) {
	kw := p.next() // 'matrix'
	name, err := p.parseName()
	if err != nil {
		return stmt{}, err
	}
	if _, err := p.expect(tokEquals); err != nil {
		return stmt{}, err
	}
	s := stmt{line: kw.line, name: name.text}

	t := p.next()
	if t.kind == tokIdent && t.text == "init" {
		s.kind = stmtInit
		if _, err := p.expect(tokLParen); err != nil {
			return stmt{}, err
		}
		if s.rows, err = p.parseOperandInt(); err != nil {
			return stmt{}, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return stmt{}, err
		}
		if s.cols, err = p.parseOperandInt(); err != nil {
			return stmt{}, err
		}
		if _, err := p.expect(tokComma); err != nil {
			return stmt{}, err
		}
		g, err := p.expect(tokIdent)
		if err != nil {
			return stmt{}, err
		}
		switch g.text {
		case "ramp":
			s.gen = genRamp
		case "wave":
			s.gen = genWave
		case "ones":
			s.gen = genOnes
		case "ident":
			s.gen = genIdent
		default:
			return stmt{}, fmt.Errorf("frontend: line %d: unknown generator %q (want ramp|wave|ones|ident)", g.line, g.text)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return stmt{}, err
		}
	} else if (t.kind == tokIdent && !isKeyword(t.text)) || t.kind == tokLParen {
		s.kind = stmtExpr
		p.pos-- // re-read t inside the expression parser
		e, err := p.parseExpr()
		if err != nil {
			return stmt{}, err
		}
		if _, alias := e.(exprName); alias {
			return stmt{}, fmt.Errorf("frontend: line %d: plain alias %q = %q is not supported (expressions must compute)", t.line, name.text, t.text)
		}
		s.expr = e
	} else {
		return stmt{}, fmt.Errorf("frontend: line %d: expected 'init(...)' or an expression, got %s", t.line, describe(t))
	}

	// Optional axis annotation.
	if p.peek().kind == tokAt {
		p.next()
		a, err := p.expect(tokIdent)
		if err != nil {
			return stmt{}, err
		}
		switch a.text {
		case "row":
			s.axisCol = false
		case "col":
			s.axisCol = true
		case "grid":
			s.axisGrid = true
		default:
			return stmt{}, fmt.Errorf("frontend: line %d: axis must be 'row', 'col' or 'grid', got %q", a.line, a.text)
		}
		s.axisExplicit = true
	}
	if _, err := p.expect(tokNewline); err != nil {
		return stmt{}, err
	}
	return s, nil
}

// parseExpr parses additive expressions: term (('+'|'-') term)*.
func (p *parser) parseExpr() (exprNode, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op opKind
		switch t.kind {
		case tokPlus:
			op = opAdd
		case tokMinus:
			op = opSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		left = exprBin{op: op, l: left, r: right, line: t.line}
	}
}

// parseTerm parses multiplicative expressions: factor ('*' factor)*.
func (p *parser) parseTerm() (exprNode, error) {
	left, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokStar {
		t := p.next()
		right, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		left = exprBin{op: opMul, l: left, r: right, line: t.line}
	}
	return left, nil
}

// parseFactor parses a matrix reference or a parenthesized expression.
func (p *parser) parseFactor() (exprNode, error) {
	t := p.next()
	switch {
	case t.kind == tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent && !isKeyword(t.text):
		return exprName{name: t.text, line: t.line}, nil
	default:
		return nil, fmt.Errorf("frontend: line %d: expected a matrix name or '(', got %s", t.line, describe(t))
	}
}
