// Package loadgen is a deterministic arrival-process generator for the
// scheduling service's load harness: a seeded splitmix64 stream feeding
// exponential interarrival times (a Poisson arrival process) and
// Gamma-distributed job weights (Marsaglia–Tsang), so a load test's
// offered traffic is a pure function of its seed — replayable across
// runs and machines, with no dependence on math/rand's global state.
package loadgen

import "math"

// Rand is a deterministic splitmix64 stream. The zero value is a valid
// generator (seed 0); it is not safe for concurrent use.
type Rand struct{ state uint64 }

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 advances the splitmix64 state.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponential draw with the given rate (mean 1/rate) —
// the interarrival time of a Poisson process at that rate.
func (r *Rand) Exp(rate float64) float64 {
	// 1-u lies in (0, 1], so the log is finite.
	return -math.Log(1-r.Float64()) / rate
}

// Normal returns a standard normal draw via Box–Muller. One value per
// call (the paired draw is discarded), so the stream position is a fixed
// function of the call count.
func (r *Rand) Normal() float64 {
	u1 := 1 - r.Float64() // (0, 1]
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Gamma returns a Gamma(shape, scale) draw by Marsaglia–Tsang squeeze
// rejection (shape >= 1), with the standard boost for shape < 1.
// Non-positive parameters return 0.
func (r *Rand) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := 1 - r.Float64()
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := 1 - r.Float64() // (0, 1]
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Arrival is one offered job: its arrival offset from the start of the
// run and its Gamma-distributed weight (used to pick a spec or size).
type Arrival struct {
	// Offset is the arrival time in seconds since the run start.
	Offset float64
	// Weight is a Gamma(shape, scale) draw.
	Weight float64
}

// Poisson generates n arrivals of a Poisson process at rate jobs/second,
// each carrying a Gamma(shape, scale) weight. The sequence is a pure
// function of (seed, n, rate, shape, scale).
func Poisson(seed uint64, n int, rate, shape, scale float64) []Arrival {
	r := New(seed)
	out := make([]Arrival, n)
	t := 0.0
	for i := range out {
		t += r.Exp(rate)
		out[i] = Arrival{Offset: t, Weight: r.Gamma(shape, scale)}
	}
	return out
}
