package loadgen

import (
	"math"
	"testing"
)

// Same seed, same stream: the generator is a pure function of its seed.
func TestDeterministicReplay(t *testing.T) {
	a := Poisson(42, 100, 50, 2, 1)
	b := Poisson(42, 100, 50, 2, 1)
	if len(a) != 100 {
		t.Fatalf("generated %d arrivals", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	if c := Poisson(43, 100, 50, 2, 1); c[0] == a[0] && c[1] == a[1] {
		t.Fatal("different seeds produced the same stream")
	}
}

// Arrivals are strictly increasing (exponential gaps are positive) and
// the mean interarrival matches 1/rate within sampling tolerance.
func TestPoissonProcessShape(t *testing.T) {
	const n, rate = 20000, 50.0
	arr := Poisson(7, n, rate, 1, 1)
	prev := 0.0
	for i, a := range arr {
		if a.Offset <= prev {
			t.Fatalf("arrival %d not increasing: %v after %v", i, a.Offset, prev)
		}
		prev = a.Offset
	}
	mean := arr[n-1].Offset / n
	if math.Abs(mean-1/rate) > 0.1/rate {
		t.Fatalf("mean interarrival %v, want ~%v", mean, 1/rate)
	}
}

// Gamma(k, θ) has mean kθ and variance kθ²; check both within sampling
// tolerance for a shape above and below 1.
func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{{2.5, 2}, {0.5, 3}} {
		r := New(11)
		const n = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(tc.shape, tc.scale)
			if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("Gamma(%v,%v) draw %v", tc.shape, tc.scale, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Fatalf("Gamma(%v,%v) mean %v, want ~%v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar {
			t.Fatalf("Gamma(%v,%v) variance %v, want ~%v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

// Degenerate parameters are total, not panics.
func TestGammaDegenerate(t *testing.T) {
	r := New(1)
	for _, v := range []float64{r.Gamma(0, 1), r.Gamma(-1, 1), r.Gamma(1, 0)} {
		if v != 0 {
			t.Fatalf("degenerate Gamma = %v, want 0", v)
		}
	}
}

// Normal draws have mean ~0 and variance ~1.
func TestNormalMoments(t *testing.T) {
	r := New(3)
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if v := sumSq/n - mean*mean; math.Abs(v-1) > 0.05 {
		t.Fatalf("normal variance %v", v)
	}
}
