package sched

import (
	"fmt"
	"sort"
	"strings"

	"paradigm/internal/mdg"
)

// Gantt renders the schedule as an ASCII chart, one row per processor,
// matching the allocation-and-schedule diagrams of Figure 7. width is the
// number of character columns for the time axis (minimum 20).
func (s *Schedule) Gantt(g *mdg.Graph, width int) string {
	if width < 20 {
		width = 20
	}
	if s.Makespan <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(width) / s.Makespan

	// Short display labels: first two runes of the name + node id.
	label := func(n mdg.NodeID) string {
		name := g.Nodes[n].Name
		if name == "" {
			name = "n"
		}
		r := []rune(name)
		if len(r) > 2 {
			r = r[:2]
		}
		return fmt.Sprintf("%s%d", string(r), n)
	}

	rows := make([][]byte, s.ProcsTotal)
	for p := range rows {
		rows[p] = []byte(strings.Repeat(".", width))
	}
	// Deterministic paint order: by start time then node id.
	order := make([]int, len(s.Entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := s.Entries[order[a]], s.Entries[order[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return order[a] < order[b]
	})
	for _, i := range order {
		e := s.Entries[i]
		lo := int(e.Start * scale)
		hi := int(e.Finish * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		lb := label(e.Node)
		for _, p := range e.Procs {
			seg := rows[p][lo:hi]
			for k := range seg {
				if k < len(lb) {
					seg[k] = lb[k]
				} else {
					seg[k] = '='
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "schedule: %d processors, makespan %.4gs, utilization %.1f%% (%s)\n",
		s.ProcsTotal, s.Makespan, 100*s.Utilization(), s.Policy)
	for p := 0; p < s.ProcsTotal; p++ {
		fmt.Fprintf(&b, "P%02d |%s|\n", p, rows[p])
	}
	fmt.Fprintf(&b, "     0%s%.4gs\n", strings.Repeat(" ", width-6), s.Makespan)
	return b.String()
}

// Table renders the schedule as a per-node text table sorted by start time.
func (s *Schedule) Table(g *mdg.Graph) string {
	order := make([]int, len(s.Entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := s.Entries[order[a]], s.Entries[order[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return order[a] < order[b]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-18s %-6s %12s %12s  %s\n", "id", "node", "procs", "start(s)", "finish(s)", "processor set")
	for _, i := range order {
		e := s.Entries[i]
		name := g.Nodes[i].Name
		if name == "" {
			name = fmt.Sprintf("n%d", i)
		}
		fmt.Fprintf(&b, "%-4d %-18s %-6d %12.6f %12.6f  %s\n",
			i, name, len(e.Procs), e.Start, e.Finish, procRanges(e.Procs))
	}
	return b.String()
}

// procRanges compresses a sorted processor list into "0-3,8,12-15" form.
func procRanges(procs []int) string {
	if len(procs) == 0 {
		return "-"
	}
	var parts []string
	lo, hi := procs[0], procs[0]
	flush := func() {
		if lo == hi {
			parts = append(parts, fmt.Sprintf("%d", lo))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", lo, hi))
		}
	}
	for _, p := range procs[1:] {
		if p == hi+1 {
			hi = p
			continue
		}
		flush()
		lo, hi = p, p
	}
	flush()
	return strings.Join(parts, ",")
}
