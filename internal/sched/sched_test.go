package sched

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"paradigm/internal/alloc"
	"paradigm/internal/bounds"
	"paradigm/internal/costmodel"
	"paradigm/internal/errs"
	"paradigm/internal/mdg"
)

var cm5Fit = costmodel.Model{Transfer: costmodel.TransferParams{
	Tss: 777.56e-6, Tps: 486.98e-9, Tsr: 465.58e-6, Tpr: 426.25e-9, Tn: 0,
}}

// forkJoinGraph: START -> {A, B} -> STOP, all explicit.
func forkJoinGraph(alpha float64) *mdg.Graph {
	var g mdg.Graph
	s := g.AddNode(mdg.Node{Name: "START"})
	a := g.AddNode(mdg.Node{Name: "A", Alpha: alpha, Tau: 10})
	b := g.AddNode(mdg.Node{Name: "B", Alpha: alpha, Tau: 10})
	st := g.AddNode(mdg.Node{Name: "STOP"})
	g.AddEdge(s, a)
	g.AddEdge(s, b)
	g.AddEdge(a, st)
	g.AddEdge(b, st)
	return &g
}

func TestPSAForkJoinConcurrent(t *testing.T) {
	g := forkJoinGraph(0.3)
	s, err := PSA(g, costmodel.Model{}, []int{1, 2, 2, 1}, 4, LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, costmodel.Model{}); err != nil {
		t.Fatal(err)
	}
	a, b := s.Entries[1], s.Entries[2]
	// Both 2-processor branches fit side by side: same start, disjoint sets.
	if a.Start != b.Start {
		t.Fatalf("branches not concurrent: %v vs %v", a.Start, b.Start)
	}
	for _, pa := range a.Procs {
		for _, pb := range b.Procs {
			if pa == pb {
				t.Fatalf("branches share processor %d", pa)
			}
		}
	}
	want := costmodel.LoopParams{Alpha: 0.3, Tau: 10}.Processing(2)
	if math.Abs(s.Makespan-want) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", s.Makespan, want)
	}
}

func TestPSASerializesWhenProcessorsScarce(t *testing.T) {
	g := forkJoinGraph(0.3)
	// Both branches want all 4 processors: they must serialize.
	s, err := PSA(g, costmodel.Model{}, []int{1, 4, 4, 1}, 4, LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(g, costmodel.Model{}); err != nil {
		t.Fatal(err)
	}
	a, b := s.Entries[1], s.Entries[2]
	if !(a.Finish <= b.Start+1e-12 || b.Finish <= a.Start+1e-12) {
		t.Fatalf("4-proc branches overlap: A=[%v,%v] B=[%v,%v]", a.Start, a.Finish, b.Start, b.Finish)
	}
	w := costmodel.LoopParams{Alpha: 0.3, Tau: 10}.Processing(4)
	if math.Abs(s.Makespan-2*w) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", s.Makespan, 2*w)
	}
}

func TestPaperExampleShape(t *testing.T) {
	// Section 1.2: with processing curves like Figure 1, executing N2 and
	// N3 concurrently on 2 processors each beats running everything on
	// all 4. Our α=0.25 instance: serial-on-4 = 2·0.4375τ vs split =
	// 0.625τ per branch.
	g := forkJoinGraph(0.25)
	mixed, err := PSA(g, costmodel.Model{}, []int{1, 2, 2, 1}, 4, LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	spmd, err := SPMD(g, costmodel.Model{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Makespan >= spmd.Makespan {
		t.Fatalf("mixed %v should beat SPMD %v", mixed.Makespan, spmd.Makespan)
	}
}

func TestRoundAndBound(t *testing.T) {
	got, err := RoundAndBound([]float64{1, 1.4, 1.7, 3.3, 6.4, 11, 64}, 64, 8, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 2, 4, 8, 8, 8} // 6.4 -> 8 (midpoint 6), 11 -> 8 (clamped), 64 -> 8
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RoundAndBound[%d] = %d, want %d (full %v)", i, got[i], want[i], got)
		}
	}
	if _, err := RoundAndBound([]float64{1}, 64, 3, false, nil); err == nil {
		t.Fatal("want error for non-power-of-two PB")
	}
	if _, err := RoundAndBound([]float64{1}, 8, 16, false, nil); err == nil {
		t.Fatal("want error for PB > procs")
	}
}

func TestRoundAndBoundSkipRounding(t *testing.T) {
	got, err := RoundAndBound([]float64{0.4, 2.9, 5.6, 12}, 16, 8, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 5, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("skip-rounding[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRunPipelinePicksCorollaryPB(t *testing.T) {
	g := forkJoinGraph(0.2)
	s, err := Run(g, cm5Fit, []float64{1, 9.7, 9.7, 1}, 16, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pb, _, _ := bounds.OptimalPB(16)
	if s.PB != pb {
		t.Fatalf("PB = %d, want Corollary-1 choice %d", s.PB, pb)
	}
	for i, a := range s.Alloc {
		if a > pb {
			t.Fatalf("node %d allocation %d exceeds PB %d", i, a, pb)
		}
		if !bounds.IsPow2(a) {
			t.Fatalf("node %d allocation %d not a power of two", i, a)
		}
	}
	if err := s.Validate(g, cm5Fit); err != nil {
		t.Fatal(err)
	}
}

func TestSPMDRespectsEdgeDelays(t *testing.T) {
	var g mdg.Graph
	a := g.AddNode(mdg.Node{Name: "a", Tau: 1})
	b := g.AddNode(mdg.Node{Name: "b", Tau: 1})
	g.AddEdge(a, b, mdg.Transfer{Bytes: 1 << 20, Kind: mdg.Transfer1D})
	m := costmodel.Model{Transfer: costmodel.TransferParams{Tn: 1e-6}}
	s, err := SPMD(&g, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(&g, m); err != nil {
		t.Fatal(err)
	}
	pf := []float64{4, 4}
	e, _ := g.EdgeBetween(a, b)
	delay := m.EdgeDelay(&g, e, pf)
	if delay <= 0 {
		t.Fatal("test premise: positive delay")
	}
	if s.Entries[b].Start < s.Entries[a].Finish+delay-1e-12 {
		t.Fatalf("SPMD ignored edge delay: start %v, finish+delay %v",
			s.Entries[b].Start, s.Entries[a].Finish+delay)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := forkJoinGraph(0.3)
	s, err := PSA(g, costmodel.Model{}, []int{1, 2, 2, 1}, 4, LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("overlap", func(t *testing.T) {
		bad := *s
		bad.Entries = append([]Entry(nil), s.Entries...)
		bad.Entries[2].Procs = bad.Entries[1].Procs // same procs, same window
		if bad.Validate(g, costmodel.Model{}) == nil {
			t.Fatal("want overlap error")
		}
	})
	t.Run("precedence", func(t *testing.T) {
		bad := *s
		bad.Entries = append([]Entry(nil), s.Entries...)
		bad.Entries[3].Start = 0
		bad.Entries[3].Finish = 0
		if bad.Validate(g, costmodel.Model{}) == nil {
			t.Fatal("want precedence error")
		}
	})
	t.Run("wrong proc count", func(t *testing.T) {
		bad := *s
		bad.Entries = append([]Entry(nil), s.Entries...)
		bad.Entries[1].Procs = bad.Entries[1].Procs[:1]
		if bad.Validate(g, costmodel.Model{}) == nil {
			t.Fatal("want proc count error")
		}
	})
	t.Run("duration", func(t *testing.T) {
		bad := *s
		bad.Entries = append([]Entry(nil), s.Entries...)
		bad.Entries[1].Finish += 1
		if bad.Validate(g, costmodel.Model{}) == nil {
			t.Fatal("want duration error")
		}
	})
}

func TestErrorPaths(t *testing.T) {
	g := forkJoinGraph(0.3)
	if _, err := PSA(g, costmodel.Model{}, []int{1, 2, 2}, 4, LowestEST); err == nil {
		t.Fatal("want error for short allocation")
	}
	if _, err := PSA(g, costmodel.Model{}, []int{1, 2, 2, 5}, 4, LowestEST); err == nil {
		t.Fatal("want error for allocation > procs")
	}
	if _, err := PSA(g, costmodel.Model{}, []int{1, 0, 2, 1}, 4, LowestEST); err == nil {
		t.Fatal("want error for zero allocation")
	}
	if _, err := Run(g, cm5Fit, []float64{1, 2}, 4, Options{}); err == nil {
		t.Fatal("want error for wrong-length continuous allocation")
	}
	if _, err := Run(g, cm5Fit, []float64{1, 2, 2, 1}, 0, Options{}); err == nil {
		t.Fatal("want error for procs=0")
	}
	if _, err := SPMD(g, cm5Fit, 0); err == nil {
		t.Fatal("want error for SPMD procs=0")
	}
}

// randomMDG builds a random schedulable MDG with explicit START/STOP.
func randomMDG(rng *rand.Rand, n int) *mdg.Graph {
	var g mdg.Graph
	for i := 0; i < n; i++ {
		g.AddNode(mdg.Node{
			Name:  "n",
			Alpha: rng.Float64() * 0.5,
			Tau:   0.01 + rng.Float64(),
		})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				kind := mdg.Transfer1D
				if rng.Intn(2) == 1 {
					kind = mdg.Transfer2D
				}
				g.AddEdge(mdg.NodeID(i), mdg.NodeID(j),
					mdg.Transfer{Bytes: 64 + rng.Intn(32768), Kind: kind})
			}
		}
	}
	g.EnsureStartStop()
	return &g
}

// TestPSAValidOnRandomGraphs: on random MDGs with random power-of-two
// allocations, the schedule always validates and the makespan is at least
// the critical path under the same weights.
func TestPSAValidOnRandomGraphs(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + int(nRaw)%12
		g := randomMDG(rng, n)
		const procs = 16
		allocv := make([]int, g.NumNodes())
		for i := range allocv {
			allocv[i] = 1 << rng.Intn(4) // 1..8
		}
		s, err := PSA(g, cm5Fit, allocv, procs, LowestEST)
		if err != nil {
			return false
		}
		if err := s.Validate(g, cm5Fit); err != nil {
			return false
		}
		pf := make([]float64, len(allocv))
		for i, a := range allocv {
			pf[i] = float64(a)
		}
		cp, err := cm5Fit.CriticalPathTime(g, pf)
		if err != nil {
			return false
		}
		return s.Makespan >= cp-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1BoundHolds: T_psa <= (1 + p/(p-PB+1))·T_opt^PB. T_opt^PB is
// unknown, but it is lower-bounded by max(C_p, A_p) under the bounded
// allocation, so we check the implied (weaker-is-impossible) inequality
// T_psa <= factor · max(A_p, C_p)-lower-bound... which Theorem 1 implies.
func TestTheorem1BoundHolds(t *testing.T) {
	f := func(seed uint16, nRaw uint8, pbExp uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + int(nRaw)%10
		g := randomMDG(rng, n)
		const procs = 16
		pb := 1 << (int(pbExp) % 5) // 1..16
		allocv := make([]int, g.NumNodes())
		for i := range allocv {
			e := rng.Intn(5)
			v := 1 << e
			if v > pb {
				v = pb
			}
			allocv[i] = v
		}
		s, err := PSA(g, cm5Fit, allocv, procs, LowestEST)
		if err != nil {
			return false
		}
		pf := make([]float64, len(allocv))
		for i, a := range allocv {
			pf[i] = float64(a)
		}
		optLB, _, _, err := cm5Fit.Phi(g, pf, procs) // max(A_p, C_p) <= T_opt^PB
		if err != nil {
			return false
		}
		factor, err := bounds.Theorem1Factor(procs, pb)
		if err != nil {
			return false
		}
		return s.Makespan <= factor*optLB+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestFullPipelineTheorem3: for the complete alloc+PSA pipeline, T_psa is
// within the Theorem 3 factor of Φ.
func TestFullPipelineTheorem3(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := randomMDG(rng, 3+rng.Intn(6))
		const procs = 16
		ar, err := alloc.Solve(g, cm5Fit, procs, alloc.Options{})
		if err != nil {
			return false
		}
		s, err := Run(g, cm5Fit, ar.P, procs, Options{})
		if err != nil {
			return false
		}
		factor, err := bounds.Theorem3Factor(procs, s.PB)
		if err != nil {
			return false
		}
		return s.Makespan <= factor*ar.Phi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPolicyRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomMDG(rng, 10)
	allocv := make([]int, g.NumNodes())
	for i := range allocv {
		allocv[i] = 1 << rng.Intn(3)
	}
	fifo, err := PSA(g, cm5Fit, allocv, 8, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if err := fifo.Validate(g, cm5Fit); err != nil {
		t.Fatal(err)
	}
	psa, err := PSA(g, cm5Fit, allocv, 8, LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Policy != FIFO || psa.Policy != LowestEST {
		t.Fatal("policy not recorded")
	}
}

func TestGanttAndTableRender(t *testing.T) {
	g := forkJoinGraph(0.3)
	s, err := PSA(g, costmodel.Model{}, []int{1, 2, 2, 1}, 4, LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	gantt := s.Gantt(g, 60)
	if !strings.Contains(gantt, "P00") || !strings.Contains(gantt, "makespan") {
		t.Fatalf("gantt missing rows:\n%s", gantt)
	}
	// Node A runs on two processor rows.
	if strings.Count(gantt, "A1") < 2 {
		t.Fatalf("expected A1 label on >=2 rows:\n%s", gantt)
	}
	table := s.Table(g)
	for _, want := range []string{"START", "STOP", "processor set"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestProcRanges(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, "-"},
		{[]int{3}, "3"},
		{[]int{0, 1, 2, 3}, "0-3"},
		{[]int{0, 2, 3, 7}, "0,2-3,7"},
	}
	for _, c := range cases {
		if got := procRanges(c.in); got != c.want {
			t.Fatalf("procRanges(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	g := forkJoinGraph(0.3)
	s, err := PSA(g, costmodel.Model{}, []int{1, 2, 2, 1}, 4, LowestEST)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func BenchmarkPSARandom32Nodes(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := randomMDG(rng, 32)
	allocv := make([]int, g.NumNodes())
	for i := range allocv {
		allocv[i] = 1 << rng.Intn(4)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PSA(g, cm5Fit, allocv, 16, LowestEST); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHLFPolicyValidAndPrioritizesCriticalPath(t *testing.T) {
	// Two chains from START: a long chain (3 heavy nodes) and a short
	// one; with only enough processors for one node at a time, HLF must
	// start the long chain first.
	var g mdg.Graph
	start := g.AddNode(mdg.Node{Name: "START"})
	long1 := g.AddNode(mdg.Node{Name: "L1", Tau: 5})
	long2 := g.AddNode(mdg.Node{Name: "L2", Tau: 5})
	short1 := g.AddNode(mdg.Node{Name: "S1", Tau: 1})
	stop := g.AddNode(mdg.Node{Name: "STOP"})
	g.AddEdge(start, long1)
	g.AddEdge(long1, long2)
	g.AddEdge(start, short1)
	g.AddEdge(long2, stop)
	g.AddEdge(short1, stop)
	allocv := []int{1, 1, 1, 1, 1}
	s, err := PSA(&g, costmodel.Model{}, allocv, 1, HLF)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(&g, costmodel.Model{}); err != nil {
		t.Fatal(err)
	}
	if s.Entries[long1].Start > s.Entries[short1].Start {
		t.Fatalf("HLF should start the long chain first: L1 at %v, S1 at %v",
			s.Entries[long1].Start, s.Entries[short1].Start)
	}
	if s.Policy != HLF || s.Policy.String() != "HLF(critical-path)" {
		t.Fatalf("policy = %v", s.Policy)
	}
}

// TestAllPoliciesValidOnRandomGraphs: every ready-queue policy yields a
// valid schedule on random MDGs.
func TestAllPoliciesValidOnRandomGraphs(t *testing.T) {
	f := func(seed uint16, polRaw uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := randomMDG(rng, 2+rng.Intn(10))
		allocv := make([]int, g.NumNodes())
		for i := range allocv {
			allocv[i] = 1 << rng.Intn(3)
		}
		pol := []Policy{LowestEST, FIFO, HLF}[int(polRaw)%3]
		s, err := PSA(g, cm5Fit, allocv, 8, pol)
		if err != nil {
			return false
		}
		return s.Validate(g, cm5Fit) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyMDGWrapsErrBadGraph: an empty graph must surface the typed
// sentinel (regression: mdg.StartStop's unwrapped error used to leak
// through psa, defeating errors.Is dispatch).
func TestEmptyMDGWrapsErrBadGraph(t *testing.T) {
	var g mdg.Graph
	if _, err := PSA(&g, cm5Fit, nil, 4, LowestEST); !errors.Is(err, errs.ErrBadGraph) {
		t.Fatalf("PSA on empty MDG: err = %v, want errs.ErrBadGraph", err)
	}
	if _, err := Run(&g, cm5Fit, nil, 4, Options{}); !errors.Is(err, errs.ErrBadGraph) {
		t.Fatalf("Run on empty MDG: err = %v, want errs.ErrBadGraph", err)
	}
	if _, err := SPMD(&g, cm5Fit, 4); !errors.Is(err, errs.ErrBadGraph) {
		t.Fatalf("SPMD on empty MDG: err = %v, want errs.ErrBadGraph", err)
	}
}
