// Package sched implements the Prioritized Scheduling Algorithm (PSA) of
// Section 3.
//
// The pipeline is exactly the paper's:
//
//  1. Rounding-off step: the continuous allocation from the convex
//     program is rounded to the arithmetic-nearest power of two (changing
//     each p_i by a factor within [2/3, 4/3] — the Theorem 2 constants).
//  2. Bounding step: allocations are clamped to a power-of-two bound PB,
//     chosen by Corollary 1 unless overridden.
//  3. Node and edge weights are recomputed under the new allocation.
//  4. List scheduling with implicit prioritization: repeatedly pick the
//     ready node with the lowest Earliest Start Time (EST), compute the
//     Processor Satisfaction Time (PST) at which its processor request
//     can be met, and schedule it at max(EST, PST).
//  5. Terminate when STOP is scheduled; its finish time is T_psa.
//
// Concrete processors are assigned as contiguous aligned power-of-two
// blocks (buddy allocation, matching how space-shared multicomputers were
// partitioned) when the system size is a power of two, and by
// earliest-available selection otherwise.
package sched

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"paradigm/internal/bounds"
	"paradigm/internal/costmodel"
	"paradigm/internal/errs"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
)

// Policy selects the ready-queue discipline.
type Policy uint8

const (
	// LowestEST is the paper's PSA: pick the ready node with the lowest
	// earliest start time.
	LowestEST Policy = iota
	// FIFO is the plain list-scheduling ablation: pick ready nodes in
	// arrival order.
	FIFO
	// HLF (highest level first) prioritizes the ready node with the
	// longest weighted path to the end of the graph — the classic
	// critical-path list-scheduling priority, for ablation A4.
	HLF
)

// String renders the policy name.
func (p Policy) String() string {
	switch p {
	case LowestEST:
		return "PSA(lowest-EST)"
	case FIFO:
		return "FIFO"
	case HLF:
		return "HLF(critical-path)"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Options tunes Run.
type Options struct {
	// PB overrides the processor bound; 0 selects Corollary 1's optimum.
	PB int
	// SkipRounding keeps the continuous allocation's floor instead of
	// power-of-two rounding (ablation A1). The bound is still applied.
	SkipRounding bool
	// Policy selects the ready-queue discipline (default LowestEST).
	Policy Policy
	// Observer, when non-nil, receives one obs.PSARound event per node
	// (the rounding/bounding decision) and one obs.PSAPick event per
	// list-scheduling pick. Nil costs one pointer comparison per event.
	Observer obs.Observer
}

// Entry is one scheduled node.
type Entry struct {
	Node   mdg.NodeID
	Start  float64
	Finish float64
	// Procs are the concrete processor ids running the node, ascending.
	Procs []int
}

// Schedule is the PSA output.
type Schedule struct {
	ProcsTotal int
	PB         int
	// Alloc is the rounded-and-bounded per-node allocation.
	Alloc []int
	// Entries are indexed by NodeID.
	Entries []Entry
	// Makespan is T_psa: the finish time of the last node (= STOP).
	Makespan float64
	// Policy that produced the schedule.
	Policy Policy
}

// RoundAndBound applies the rounding-off and bounding steps to a
// continuous allocation. pb must be a positive power of two <= procs.
// A non-nil observer receives one obs.PSARound event per node.
func RoundAndBound(cont []float64, procs, pb int, skipRounding bool, o obs.Observer) ([]int, error) {
	if pb < 1 || pb > procs || !bounds.IsPow2(pb) {
		return nil, fmt.Errorf("sched: %w: PB = %d must be a power of two in [1, %d]", errs.ErrInfeasible, pb, procs)
	}
	out := make([]int, len(cont))
	for i, p := range cont {
		var unbounded int
		if skipRounding {
			unbounded = int(math.Floor(p))
			if unbounded < 1 {
				unbounded = 1
			}
			v := unbounded
			if v > pb {
				v = pb
			}
			out[i] = v
		} else {
			unbounded = bounds.RoundPow2(p, 0)
			out[i] = bounds.RoundPow2(p, pb)
		}
		if o != nil {
			o.Observe(obs.PSARound{
				Node: i, Continuous: p,
				Rounded: unbounded, Final: out[i],
				Clipped: out[i] < unbounded,
			})
		}
	}
	return out, nil
}

// Run executes the full PSA pipeline: round, bound, recompute weights,
// schedule. cont is the continuous allocation from the convex program
// (indexed by NodeID).
func Run(g *mdg.Graph, model costmodel.Model, cont []float64, procs int, opts Options) (*Schedule, error) {
	return RunCtx(context.Background(), g, model, cont, procs, opts)
}

// RunCtx is Run with cancellation: ctx is checked on every
// list-scheduling pick, mirroring the allocator's per-temperature-stage
// checks.
func RunCtx(ctx context.Context, g *mdg.Graph, model costmodel.Model, cont []float64, procs int, opts Options) (*Schedule, error) {
	if procs < 1 {
		return nil, fmt.Errorf("sched: %w: procs = %d, want >= 1", errs.ErrInfeasible, procs)
	}
	if len(cont) != g.NumNodes() {
		return nil, fmt.Errorf("sched: %w: allocation has %d entries for %d nodes", errs.ErrInfeasible, len(cont), g.NumNodes())
	}
	pb := opts.PB
	if pb == 0 {
		var err error
		pb, _, err = bounds.OptimalPB(procs)
		if err != nil {
			return nil, err
		}
	}
	alloc, err := RoundAndBound(cont, procs, pb, opts.SkipRounding, opts.Observer)
	if err != nil {
		return nil, err
	}
	s, err := psa(ctx, g, model, alloc, procs, opts.Policy, opts.Observer)
	if err != nil {
		return nil, err
	}
	s.PB = pb
	return s, nil
}

// readyItem is a ready-queue element.
type readyItem struct {
	node  mdg.NodeID
	est   float64
	seq   int     // FIFO arrival sequence
	level float64 // weighted bottom level (HLF)
}

// readyQueue orders by (EST, node id) under LowestEST, by arrival under
// FIFO, and by descending bottom level under HLF.
type readyQueue struct {
	items  []readyItem
	policy Policy
}

func (q *readyQueue) Len() int { return len(q.items) }
func (q *readyQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	switch q.policy {
	case FIFO:
		return a.seq < b.seq
	case HLF:
		if a.level != b.level {
			return a.level > b.level
		}
		if a.est != b.est {
			return a.est < b.est
		}
		return a.node < b.node
	}
	if a.est != b.est {
		return a.est < b.est
	}
	return a.node < b.node
}
func (q *readyQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *readyQueue) Push(x interface{}) { q.items = append(q.items, x.(readyItem)) }
func (q *readyQueue) Pop() interface{} {
	old := q.items
	n := len(old)
	it := old[n-1]
	q.items = old[:n-1]
	return it
}

// PSA schedules g under an integer allocation (one entry per node, each in
// [1, procs]) onto procs processors. The graph must have unique START and
// STOP nodes (use mdg.EnsureStartStop).
func PSA(g *mdg.Graph, model costmodel.Model, alloc []int, procs int, policy Policy) (*Schedule, error) {
	return psa(context.Background(), g, model, alloc, procs, policy, nil)
}

// psa is the list scheduler behind PSA and Run; a non-nil observer
// receives one obs.PSAPick event per scheduling decision.
func psa(ctx context.Context, g *mdg.Graph, model costmodel.Model, alloc []int, procs int, policy Policy, o obs.Observer) (*Schedule, error) {
	n := g.NumNodes()
	if n == 0 {
		// An empty MDG used to surface mdg.StartStop's unwrapped error;
		// callers dispatching with errors.Is need the sentinel.
		return nil, fmt.Errorf("sched: %w: empty MDG", errs.ErrBadGraph)
	}
	if len(alloc) != n {
		return nil, fmt.Errorf("sched: %w: allocation has %d entries for %d nodes", errs.ErrInfeasible, len(alloc), n)
	}
	for i, a := range alloc {
		if a < 1 || a > procs {
			return nil, fmt.Errorf("sched: %w: node %d allocation %d outside [1, %d]", errs.ErrInfeasible, i, a, procs)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	start, stop, err := g.StartStop()
	if err != nil {
		return nil, err
	}

	// Recompute weights under the integer allocation (PSA step 3).
	pf := make([]float64, n)
	for i, a := range alloc {
		pf[i] = float64(a)
	}
	weight := make([]float64, n)
	for i := 0; i < n; i++ {
		weight[i] = model.NodeWeight(g, mdg.NodeID(i), pf)
	}

	freeAt := make([]float64, procs)
	entries := make([]Entry, n)
	scheduled := make([]bool, n)
	predsLeft := make([]int, n)
	for i := 0; i < n; i++ {
		predsLeft[i] = len(g.Preds(mdg.NodeID(i)))
	}

	// Bottom levels for the HLF priority: longest weighted path (node
	// weights plus edge delays) from each node to the end of the graph.
	level := make([]float64, n)
	if policy == HLF {
		order, err := g.TopoOrder()
		if err != nil {
			return nil, err
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			best := 0.0
			for _, s := range g.Succs(v) {
				e, _ := g.EdgeBetween(v, s)
				if t := model.EdgeDelay(g, e, pf) + level[s]; t > best {
					best = t
				}
			}
			level[v] = best + weight[v]
		}
	}

	rq := &readyQueue{policy: policy}
	heap.Init(rq)
	seq := 0
	push := func(node mdg.NodeID, est float64) {
		heap.Push(rq, readyItem{node: node, est: est, seq: seq, level: level[node]})
		seq++
	}
	push(start, 0)

	buddy := bounds.IsPow2(procs)
	makespan := 0.0
	for rq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		it := heap.Pop(rq).(readyItem)
		node := it.node
		if scheduled[node] {
			return nil, fmt.Errorf("sched: node %d scheduled twice", node)
		}
		q := alloc[node]
		var procSet []int
		var pst float64
		if buddy && bounds.IsPow2(q) {
			procSet, pst = pickBuddyBlock(freeAt, q, it.est)
		} else {
			procSet, pst = pickEarliestFree(freeAt, q)
		}
		startT := math.Max(it.est, pst)
		finishT := startT + weight[node]
		for _, p := range procSet {
			freeAt[p] = finishT
		}
		if o != nil {
			o.Observe(obs.PSAPick{
				Node: int(node), EST: it.est, PST: pst,
				Start: startT, Finish: finishT, Procs: len(procSet),
			})
		}
		entries[node] = Entry{Node: node, Start: startT, Finish: finishT, Procs: procSet}
		scheduled[node] = true
		if finishT > makespan {
			makespan = finishT
		}
		if node == stop {
			break
		}
		// Release successors whose precedence constraints are now met.
		for _, s := range g.Succs(node) {
			predsLeft[s]--
			if predsLeft[s] == 0 {
				est := 0.0
				for _, m := range g.Preds(s) {
					e, _ := g.EdgeBetween(m, s)
					if t := entries[m].Finish + model.EdgeDelay(g, e, pf); t > est {
						est = t
					}
				}
				push(s, est)
			}
		}
	}
	if !scheduled[stop] {
		return nil, fmt.Errorf("sched: STOP node %d never became ready (disconnected graph?)", stop)
	}

	return &Schedule{
		ProcsTotal: procs,
		Alloc:      alloc,
		Entries:    entries,
		Makespan:   entries[stop].Finish,
		Policy:     policy,
	}, nil
}

// pickEarliestFree selects the q processors with the smallest freeAt
// (ties by id); the PST is the largest freeAt among them.
func pickEarliestFree(freeAt []float64, q int) ([]int, float64) {
	ids := make([]int, len(freeAt))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return freeAt[ids[a]] < freeAt[ids[b]] })
	sel := append([]int(nil), ids[:q]...)
	sort.Ints(sel)
	pst := 0.0
	for _, p := range sel {
		if freeAt[p] > pst {
			pst = freeAt[p]
		}
	}
	return sel, pst
}

// pickBuddyBlock selects an aligned contiguous block of q processors
// (q a power of two dividing len(freeAt)) minimizing the node's start time
// max(est, block PST), breaking ties toward the lowest block index.
func pickBuddyBlock(freeAt []float64, q int, est float64) ([]int, float64) {
	p := len(freeAt)
	bestStart := math.Inf(1)
	bestPST := 0.0
	bestBase := -1
	for base := 0; base+q <= p; base += q {
		pst := 0.0
		for i := base; i < base+q; i++ {
			if freeAt[i] > pst {
				pst = freeAt[i]
			}
		}
		start := math.Max(est, pst)
		if start < bestStart {
			bestStart, bestPST, bestBase = start, pst, base
		}
	}
	sel := make([]int, q)
	for i := range sel {
		sel[i] = bestBase + i
	}
	return sel, bestPST
}

// SPMD builds the pure data-parallel baseline schedule: every node runs on
// all processors, one after another in deterministic topological order,
// with weights evaluated at p_i = procs. This is the "naive scheme" of the
// paper's Section 1.2 example and the SPMD arm of Figure 8.
func SPMD(g *mdg.Graph, model costmodel.Model, procs int) (*Schedule, error) {
	if procs < 1 {
		return nil, fmt.Errorf("sched: %w: procs = %d, want >= 1", errs.ErrInfeasible, procs)
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("sched: %w: empty MDG", errs.ErrBadGraph)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	pf := make([]float64, n)
	alloc := make([]int, n)
	for i := range pf {
		pf[i] = float64(procs)
		alloc[i] = procs
	}
	all := make([]int, procs)
	for i := range all {
		all[i] = i
	}
	entries := make([]Entry, n)
	now := 0.0
	for _, v := range order {
		// Even back-to-back SPMD execution must respect edge delays.
		est := now
		for _, m := range g.Preds(v) {
			e, _ := g.EdgeBetween(m, v)
			if t := entries[m].Finish + model.EdgeDelay(g, e, pf); t > est {
				est = t
			}
		}
		w := model.NodeWeight(g, v, pf)
		entries[v] = Entry{Node: v, Start: est, Finish: est + w, Procs: all}
		now = entries[v].Finish
	}
	return &Schedule{
		ProcsTotal: procs,
		PB:         procs,
		Alloc:      alloc,
		Entries:    entries,
		Makespan:   now,
		Policy:     LowestEST,
	}, nil
}

// Validate checks schedule invariants against the graph and model:
// no processor runs two nodes at once, every precedence (plus edge delay)
// is respected, durations match recomputed node weights, and processor
// sets have the allocated size.
func (s *Schedule) Validate(g *mdg.Graph, model costmodel.Model) error {
	n := g.NumNodes()
	if len(s.Entries) != n || len(s.Alloc) != n {
		return fmt.Errorf("sched: schedule covers %d/%d nodes", len(s.Entries), n)
	}
	pf := make([]float64, n)
	for i, a := range s.Alloc {
		pf[i] = float64(a)
	}
	type iv struct {
		lo, hi float64
		node   mdg.NodeID
	}
	perProc := make([][]iv, s.ProcsTotal)
	const eps = 1e-9
	for i, e := range s.Entries {
		if e.Start < -eps || e.Finish < e.Start-eps {
			return fmt.Errorf("sched: node %d has invalid interval [%v, %v]", i, e.Start, e.Finish)
		}
		if len(e.Procs) != s.Alloc[i] {
			return fmt.Errorf("sched: node %d uses %d processors, allocated %d", i, len(e.Procs), s.Alloc[i])
		}
		seen := map[int]bool{}
		for _, p := range e.Procs {
			if p < 0 || p >= s.ProcsTotal {
				return fmt.Errorf("sched: node %d uses processor %d outside [0,%d)", i, p, s.ProcsTotal)
			}
			if seen[p] {
				return fmt.Errorf("sched: node %d lists processor %d twice", i, p)
			}
			seen[p] = true
			perProc[p] = append(perProc[p], iv{e.Start, e.Finish, mdg.NodeID(i)})
		}
		w := model.NodeWeight(g, mdg.NodeID(i), pf)
		if math.Abs((e.Finish-e.Start)-w) > eps*math.Max(1, w) {
			return fmt.Errorf("sched: node %d duration %v != weight %v", i, e.Finish-e.Start, w)
		}
	}
	for p, ivs := range perProc {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].lo < ivs[b].lo })
		// Flag only positive-measure overlap: zero-duration dummy nodes
		// (START/STOP) legitimately share instants with real work.
		maxHi := math.Inf(-1)
		var maxNode mdg.NodeID
		for _, v := range ivs {
			if math.Min(maxHi, v.hi)-v.lo > eps {
				return fmt.Errorf("sched: processor %d overlaps nodes %d and %d", p, maxNode, v.node)
			}
			if v.hi > maxHi {
				maxHi, maxNode = v.hi, v.node
			}
		}
	}
	for _, e := range g.Edges {
		from, to := s.Entries[e.From], s.Entries[e.To]
		delay := model.EdgeDelay(g, e, pf)
		if to.Start < from.Finish+delay-eps {
			return fmt.Errorf("sched: edge %d->%d violated: start %v < finish %v + delay %v",
				e.From, e.To, to.Start, from.Finish, delay)
		}
	}
	return nil
}

// Utilization returns the fraction of the processor-time area
// procs×makespan occupied by node execution.
func (s *Schedule) Utilization() float64 {
	if s.Makespan <= 0 {
		return 0
	}
	busy := 0.0
	for _, e := range s.Entries {
		busy += (e.Finish - e.Start) * float64(len(e.Procs))
	}
	return busy / (s.Makespan * float64(s.ProcsTotal))
}
