package sched

import (
	"testing"

	"paradigm/internal/mdg"
)

// diamond builds START(0) -> a(1), b(2) -> STOP(3)-ish shape without
// dummies: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3.
func diamond(t *testing.T) *mdg.Graph {
	t.Helper()
	var g mdg.Graph
	n0 := g.AddNode(mdg.Node{Name: "n0", Alpha: 0.1, Tau: 1})
	n1 := g.AddNode(mdg.Node{Name: "n1", Alpha: 0.1, Tau: 1})
	n2 := g.AddNode(mdg.Node{Name: "n2", Alpha: 0.1, Tau: 1})
	n3 := g.AddNode(mdg.Node{Name: "n3", Alpha: 0.1, Tau: 1})
	tr := mdg.Transfer{Bytes: 8, Kind: mdg.Transfer1D}
	g.AddEdge(n0, n1, tr)
	g.AddEdge(n0, n2, tr)
	g.AddEdge(n1, n3, tr)
	g.AddEdge(n2, n3, tr)
	return &g
}

func TestCompletedFrontier(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		name string
		done []bool
		want []bool
	}{
		{"nothing done", []bool{false, false, false, false}, []bool{false, false, false, false}},
		{"all done", []bool{true, true, true, true}, []bool{true, true, true, true}},
		{"one branch", []bool{true, true, false, false}, []bool{true, true, false, false}},
		// An orphan (done without its ancestors) is demoted: its blocks
		// cannot be trusted when its input producers never ran.
		{"orphan leaf", []bool{false, false, false, true}, []bool{false, false, false, false}},
		{"orphan branch", []bool{true, false, true, true}, []bool{true, false, true, false}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := CompletedFrontier(g, tc.done)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("frontier = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestCompletedFrontierSizeMismatch(t *testing.T) {
	g := diamond(t)
	if _, err := CompletedFrontier(g, []bool{true}); err == nil {
		t.Fatal("want size-mismatch error")
	}
}
