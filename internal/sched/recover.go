// Failure-aware rescheduling support: the pure frontier computation the
// recovery driver builds its residual program from. The driver itself
// lives in the root package (codegen already imports sched, so the
// orchestration that needs codegen cannot sit here).

package sched

import (
	"fmt"

	"paradigm/internal/mdg"
)

// CompletedFrontier computes the stably-complete node set of a partial
// run: node v is stably complete iff done[v] and every predecessor is
// stably complete. Under dataflow execution the done set is already
// ancestor-closed — a barrier cannot execute before its inputs' producers
// — but a corrupted partial state must demote such orphans to
// incomplete so recovery re-runs them rather than trusting their blocks.
//
// Dummy START/STOP nodes run no barrier, so callers mark them done
// before calling (they produce nothing and are vacuously complete).
func CompletedFrontier(g *mdg.Graph, done []bool) ([]bool, error) {
	if len(done) != g.NumNodes() {
		return nil, fmt.Errorf("sched: done has %d entries for %d nodes", len(done), g.NumNodes())
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	stable := make([]bool, g.NumNodes())
	for _, v := range order {
		if !done[v] {
			continue
		}
		ok := true
		for _, u := range g.Preds(v) {
			if !stable[u] {
				ok = false
				break
			}
		}
		stable[v] = ok
	}
	return stable, nil
}
