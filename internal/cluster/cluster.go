// Package cluster is the shared-clock multi-job simulator: a stream of
// MDG jobs arriving over virtual time, routed onto partitions of one
// processor pool, surviving pool-scoped processor failures.
//
// The paper schedules one MDG on a reliable, dedicated machine. This
// package drops both assumptions at once: many jobs share the pool
// (pluggable routers decide who gets which partition), and fail-stop
// deaths hit the *pool* rather than a job — the owning job's partition
// shrinks under it and the per-job recovery driver replans onto the
// survivors, while the pool health model (alive → suspect → dead with a
// deterministic detection latency) decides when the cluster itself
// stops assigning the processor.
//
// Determinism is the design invariant. The loop runs on a virtual
// clock with a single event heap ordered by (time, kind, sequence);
// fault schedules and arrival processes are seeded; routers are
// constructed fresh per run. Run is therefore a pure function of
// (specs, Options) — the same inputs give a byte-identical
// Outcome.String(), which is what makes counterfactual replay ("what if
// this job had gotten 32 processors instead of 16") a meaningful
// comparison rather than a rerun that happens to differ.
//
// Fault translation happens at placement. The pool fault plan is
// static and seeded, so when a job is placed at virtual time T on pool
// processors P, every pool ProcFail targeting a member of P becomes a
// partition-relative ProcFail at max(0, At-T) in the job's own plan —
// including deaths that already happened in fact but are not yet
// detected (the suspect state), which the job sees as a relative-time-0
// death and recovers from internally. The job then runs exactly once
// through the per-job pipeline; the cluster loop never re-runs it at
// fault events, it only does pool bookkeeping when the detector fires.
package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"

	"paradigm/internal/fault"
	"paradigm/internal/obs"
)

// Spec describes one job submitted to the cluster.
type Spec struct {
	// ID names the job; unique within a run.
	ID string
	// Class is the SLO class label ("gold"/"silver"/"bronze" by
	// convention); Priority orders admission and shedding (higher wins).
	Class    string
	Priority int
	// Arrive is the virtual arrival time (>= 0, finite).
	Arrive float64
	// Procs is the requested partition size; MinProcs (default 1) is the
	// smallest partition the job accepts under degradation.
	Procs, MinProcs int
	// Payload carries the job body (the root glue stores the *Program);
	// the cluster loop never inspects it.
	Payload any
}

func (s Spec) minProcs() int {
	if s.MinProcs > 0 {
		return s.MinProcs
	}
	return 1
}

// RunOutcome is what a Runner reports for one completed job.
type RunOutcome struct {
	// Duration is the job's virtual running time on its partition,
	// recovery included.
	Duration float64
	// Digest identifies the job's output data; the chaos gate requires
	// it byte-identical to the job's fault-free reference.
	Digest string
	// Recovered/Attempts mirror the per-job recovery driver's report.
	Recovered bool
	Attempts  int
}

// Runner executes one job on a partition. The cluster loop is
// model-agnostic: the root package provides the paper-pipeline
// implementation, tests provide fakes.
type Runner interface {
	// Run executes spec on procs processors under a partition-relative
	// fault plan (nil = fault-free). It is called once per placement.
	Run(spec Spec, procs int, plan *fault.Plan) (RunOutcome, error)
	// Predict estimates the objective Φ (average per-processor time) of
	// running spec on procs processors — the best-fit router's cost
	// surface. NaN/Inf means "unknown".
	Predict(spec Spec, procs int) float64
}

// Options configures a cluster run.
type Options struct {
	// Procs is the pool size (required, >= 1).
	Procs int
	// Router names the routing policy: "round-robin" (default),
	// "least-loaded", or "best-fit". NewRouter, when set, overrides the
	// name with a custom constructor (called once per run, so stateful
	// routers replay deterministically).
	Router    string
	NewRouter func() Router
	// Faults is the pool-scoped fault plan. Only ProcFails are legal:
	// message faults and stragglers are job-scoped coordinates that have
	// no meaning at pool scope.
	Faults *fault.Plan
	// DetectLatency is the deterministic failure-detection delay: a
	// processor that dies at t is suspect (failed in fact, still
	// assignable) until t+DetectLatency, dead after.
	DetectLatency float64
	// MaxPending bounds the admission queue; 0 = unbounded. When an
	// arrival would exceed it, the lowest-(priority, latest-arrival)
	// pending job is shed.
	MaxPending int
	// Runner executes jobs (required).
	Runner Runner
	// Observer receives obs.ClusterDecision and obs.PoolHealth events.
	Observer obs.Observer
	// Overrides forces the requested partition size per job ID — the
	// counterfactual replay knob.
	Overrides map[string]int
}

// JobResult records one completed (or failed) job.
type JobResult struct {
	ID, Class             string
	Arrive, Start, Finish float64
	Requested, Granted    int
	Degraded              bool
	Procs                 []int
	Digest                string
	Recovered             bool
	Attempts              int
	Err                   string
}

// Decision is one entry of the routing/placement decision trace.
type Decision struct {
	Seq       int
	Time      float64
	Decision  string
	Job       string
	Proc      int
	Requested int
	Granted   int
}

// Outcome is the full deterministic record of a cluster run.
type Outcome struct {
	Procs     int
	Router    string
	FinalTime float64
	// Jobs is in completion order; Shed and Evicted in decision order.
	Jobs      []JobResult
	Shed      []string
	Evicted   []string
	Decisions []Decision
	// Utilization is Σ busy processor-time / (Procs · FinalTime).
	Utilization float64
}

// String renders the outcome as a canonical byte-stable text: two runs
// with identical inputs produce identical strings, which is the replay
// determinism gate.
func (o *Outcome) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster procs=%d router=%s final=%g util=%.6f\n",
		o.Procs, o.Router, o.FinalTime, o.Utilization)
	for _, j := range o.Jobs {
		fmt.Fprintf(&b, "job id=%s class=%s arrive=%g start=%g finish=%g req=%d granted=%d degraded=%t procs=%v recovered=%t attempts=%d digest=%s err=%q\n",
			j.ID, j.Class, j.Arrive, j.Start, j.Finish, j.Requested, j.Granted,
			j.Degraded, j.Procs, j.Recovered, j.Attempts, j.Digest, j.Err)
	}
	for _, id := range o.Shed {
		fmt.Fprintf(&b, "shed id=%s\n", id)
	}
	for _, id := range o.Evicted {
		fmt.Fprintf(&b, "evicted id=%s\n", id)
	}
	for _, d := range o.Decisions {
		fmt.Fprintf(&b, "decision seq=%d t=%g %s job=%s proc=%d req=%d granted=%d\n",
			d.Seq, d.Time, d.Decision, d.Job, d.Proc, d.Requested, d.Granted)
	}
	return b.String()
}

// Job looks a completed job up by ID.
func (o *Outcome) Job(id string) (JobResult, bool) {
	for _, j := range o.Jobs {
		if j.ID == id {
			return j, true
		}
	}
	return JobResult{}, false
}

// Event kinds, in tie-break order at one virtual instant: a death is
// in force before anything else happening at that time, detection
// precedes job completion (a job finishing at the detect instant has
// already absorbed the fault internally), completions free capacity
// before new arrivals claim it.
const (
	evFail = iota
	evDetect
	evFinish
	evArrive
)

type event struct {
	time float64
	kind int
	seq  int
	proc int    // evFail/evDetect
	job  string // evFinish
	spec int    // evArrive: index into specs
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Processor health states.
const (
	procAlive = iota
	procSuspect
	procDead
)

type pendingJob struct {
	spec Spec
	seq  int // arrival order, the FIFO tie-break within a priority
}

type placedJob struct {
	spec         Spec
	procs        []int
	start        float64
	req, granted int
	degraded     bool
	out          RunOutcome
	err          error
}

type state struct {
	o      Options
	router Router

	health []int
	owner  []string // "" = unowned
	busy   []float64

	pending []pendingJob
	placed  map[string]*placedJob

	events  eventHeap
	evSeq   int
	decSeq  int
	outcome *Outcome
}

func (st *state) push(e event) {
	e.seq = st.evSeq
	st.evSeq++
	heap.Push(&st.events, e)
}

func (st *state) emit(e obs.Event) {
	if st.o.Observer != nil {
		st.o.Observer.Observe(e)
	}
}

func (st *state) decide(t float64, decision, job string, proc, req, granted int) {
	st.outcome.Decisions = append(st.outcome.Decisions, Decision{
		Seq: st.decSeq, Time: t, Decision: decision, Job: job,
		Proc: proc, Requested: req, Granted: granted,
	})
	st.decSeq++
	st.emit(obs.ClusterDecision{
		Decision: decision, Job: job, Router: st.router.Name(),
		Requested: req, Granted: granted, Time: t,
	})
}

// assignable counts processors not yet declared dead — the capacity the
// cluster believes it has (suspect processors included: that is the
// point of detection latency).
func (st *state) assignable() int {
	n := 0
	for _, h := range st.health {
		if h != procDead {
			n++
		}
	}
	return n
}

// free returns the unowned, not-dead processors in ascending order.
func (st *state) free() []int {
	var out []int
	for q := range st.health {
		if st.health[q] != procDead && st.owner[q] == "" {
			out = append(out, q)
		}
	}
	return out
}

// Run executes the cluster simulation over specs and returns its full
// deterministic record.
func Run(specs []Spec, o Options) (*Outcome, error) {
	if o.Procs < 1 {
		return nil, fmt.Errorf("cluster: Procs = %d, want >= 1", o.Procs)
	}
	if o.Runner == nil {
		return nil, fmt.Errorf("cluster: Options.Runner is required")
	}
	if o.DetectLatency < 0 || math.IsNaN(o.DetectLatency) || math.IsInf(o.DetectLatency, 0) {
		return nil, fmt.Errorf("cluster: DetectLatency = %v, want finite and >= 0", o.DetectLatency)
	}
	if o.Faults != nil {
		if len(o.Faults.MsgFaults) > 0 || len(o.Faults.Stragglers) > 0 {
			return nil, fmt.Errorf("cluster: pool fault plans take ProcFails only — message faults and stragglers are job-scoped")
		}
		if err := o.Faults.Validate(o.Procs); err != nil {
			return nil, fmt.Errorf("cluster: pool fault plan: %w", err)
		}
	}
	router, err := newRouter(o)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.ID == "" {
			return nil, fmt.Errorf("cluster: spec %d has no ID", i)
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("cluster: duplicate job ID %q", s.ID)
		}
		seen[s.ID] = true
		if s.Procs < 1 {
			return nil, fmt.Errorf("cluster: job %q requests %d processors, want >= 1", s.ID, s.Procs)
		}
		if s.minProcs() > s.Procs {
			return nil, fmt.Errorf("cluster: job %q has MinProcs %d > Procs %d", s.ID, s.MinProcs, s.Procs)
		}
		if s.Arrive < 0 || math.IsNaN(s.Arrive) || math.IsInf(s.Arrive, 0) {
			return nil, fmt.Errorf("cluster: job %q arrival %v, want finite and >= 0", s.ID, s.Arrive)
		}
	}

	st := &state{
		o:      o,
		router: router,
		health: make([]int, o.Procs),
		owner:  make([]string, o.Procs),
		busy:   make([]float64, o.Procs),
		placed: map[string]*placedJob{},
		outcome: &Outcome{
			Procs: o.Procs, Router: router.Name(),
		},
	}
	heap.Init(&st.events)
	if o.Faults != nil {
		for _, f := range o.Faults.ProcFails {
			st.push(event{time: f.At, kind: evFail, proc: f.Proc})
			st.push(event{time: f.At + o.DetectLatency, kind: evDetect, proc: f.Proc})
		}
	}
	// Arrivals enter the heap in input order; the heap's (time, kind,
	// seq) order makes same-instant arrivals FIFO by submission.
	for i, s := range specs {
		st.push(event{time: s.Arrive, kind: evArrive, spec: i})
	}

	arrivalSeq := 0
	for st.events.Len() > 0 {
		e := heap.Pop(&st.events).(event)
		if e.time > st.outcome.FinalTime {
			st.outcome.FinalTime = e.time
		}
		switch e.kind {
		case evFail:
			// The processor failed in fact. Nothing is rerouted yet: the
			// cluster has not noticed. A job already holding it carries
			// the matching partition-relative fault from placement time.
			st.health[e.proc] = procSuspect
			st.emit(obs.PoolHealth{Proc: e.proc, State: "suspect", Time: e.time})
		case evDetect:
			if st.health[e.proc] == procDead {
				break
			}
			st.health[e.proc] = procDead
			st.emit(obs.PoolHealth{Proc: e.proc, State: "dead", Time: e.time})
			st.decide(e.time, "replace", st.owner[e.proc], e.proc, -1, -1)
			st.place(e.time, "")
		case evFinish:
			pj := st.placed[e.job]
			for _, q := range pj.procs {
				if st.owner[q] == e.job {
					st.owner[q] = ""
				}
			}
			jr := JobResult{
				ID: pj.spec.ID, Class: pj.spec.Class,
				Arrive: pj.spec.Arrive, Start: pj.start, Finish: e.time,
				Requested: pj.req, Granted: pj.granted, Degraded: pj.degraded,
				Procs:  pj.procs,
				Digest: pj.out.Digest, Recovered: pj.out.Recovered, Attempts: pj.out.Attempts,
			}
			if pj.err != nil {
				jr.Err = pj.err.Error()
			}
			st.outcome.Jobs = append(st.outcome.Jobs, jr)
			st.decide(e.time, "finish", pj.spec.ID, -1, pj.req, pj.granted)
			st.place(e.time, "")
		case evArrive:
			s := specs[e.spec]
			st.pending = append(st.pending, pendingJob{spec: s, seq: arrivalSeq})
			arrivalSeq++
			if o.MaxPending > 0 && len(st.pending) > o.MaxPending {
				st.shed(e.time)
			}
			st.place(e.time, s.ID)
		}
	}
	if len(st.pending) > 0 {
		return nil, fmt.Errorf("cluster: %d jobs still pending with no events left (placement livelock)", len(st.pending))
	}
	if st.outcome.FinalTime > 0 {
		total := 0.0
		for _, b := range st.busy {
			total += b
		}
		st.outcome.Utilization = total / (float64(o.Procs) * st.outcome.FinalTime)
	}
	return st.outcome, nil
}

// shed drops the least-deserving pending job: lowest priority, then
// latest arrival — the SLO-class shedding rule (class maps to priority).
func (st *state) shed(t float64) {
	worst := 0
	for i := 1; i < len(st.pending); i++ {
		w, c := st.pending[worst], st.pending[i]
		if c.spec.Priority < w.spec.Priority ||
			(c.spec.Priority == w.spec.Priority && c.seq > w.seq) {
			worst = i
		}
	}
	victim := st.pending[worst]
	st.pending = append(st.pending[:worst], st.pending[worst+1:]...)
	st.outcome.Shed = append(st.outcome.Shed, victim.spec.ID)
	st.decide(t, "shed", victim.spec.ID, -1, victim.spec.Procs, 0)
}

// place runs one admission scan at time t: pending jobs in (priority
// desc, arrival asc) order, each placed, degraded, evicted, or left
// pending. arrived names the job whose arrival triggered the scan, so a
// failed first attempt is traced as one "requeue" decision without
// re-tracing every waiter on every scan.
func (st *state) place(t float64, arrived string) {
	order := make([]int, len(st.pending))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := st.pending[order[a]], st.pending[order[b]]
		if pa.spec.Priority != pb.spec.Priority {
			return pa.spec.Priority > pb.spec.Priority
		}
		return pa.seq < pb.seq
	})
	taken := map[int]bool{}
	for _, idx := range order {
		pj := st.pending[idx]
		s := pj.spec
		req := s.Procs
		if forced, ok := st.o.Overrides[s.ID]; ok && forced > 0 {
			req = forced
		}
		minP := s.minProcs()
		if minP > req {
			minP = req
		}
		assignable := st.assignable()
		if assignable < minP {
			taken[idx] = true
			st.outcome.Evicted = append(st.outcome.Evicted, s.ID)
			st.decide(t, "evict", s.ID, -1, req, 0)
			continue
		}
		free := st.free()
		grant := 0
		degraded := false
		switch {
		case len(free) >= req:
			grant = req
		case assignable < req && len(free) >= minP:
			// The pool can never satisfy the full request again: shrink
			// rather than wait forever.
			grant = len(free)
			if grant > req {
				grant = req
			}
			degraded = true
		default:
			if s.ID == arrived {
				st.decide(t, "requeue", s.ID, -1, req, 0)
			}
			continue
		}
		procs := st.route(s, free, grant, minP)
		st.launch(t, s, procs, req, degraded)
		taken[idx] = true
	}
	if len(taken) > 0 {
		var rest []pendingJob
		for i, pj := range st.pending {
			if !taken[i] {
				rest = append(rest, pj)
			}
		}
		st.pending = rest
	}
}

// route asks the router for a partition and sanity-checks the answer; a
// router returning garbage falls back to the first-free prefix so a
// pluggable policy bug degrades placement quality, not correctness.
func (st *state) route(s Spec, free []int, grant, minP int) []int {
	rc := RouteContext{
		Free:  append([]int(nil), free...),
		Grant: grant,
		Min:   minP,
		Busy:  func(q int) float64 { return st.busy[q] },
		Predict: func(k int) float64 {
			return st.o.Runner.Predict(s, k)
		},
	}
	procs := st.router.Route(s, rc)
	if !validPartition(procs, free, grant, minP) {
		procs = append([]int(nil), free[:grant]...)
	}
	sort.Ints(procs)
	return procs
}

func validPartition(procs, free []int, grant, minP int) bool {
	if len(procs) < minP || len(procs) > grant {
		return false
	}
	ok := make(map[int]bool, len(free))
	for _, q := range free {
		ok[q] = true
	}
	seen := make(map[int]bool, len(procs))
	for _, q := range procs {
		if !ok[q] || seen[q] {
			return false
		}
		seen[q] = true
	}
	return true
}

// launch translates the pool fault plan into the job's
// partition-relative plan, runs the job once, and schedules its finish.
func (st *state) launch(t float64, s Spec, procs []int, req int, degraded bool) {
	for _, q := range procs {
		st.owner[q] = s.ID
	}
	var plan *fault.Plan
	if st.o.Faults != nil {
		local := make(map[int]int, len(procs))
		for i, q := range procs {
			local[q] = i
		}
		for _, f := range st.o.Faults.ProcFails {
			idx, mine := local[f.Proc]
			if !mine {
				continue
			}
			if plan == nil {
				plan = &fault.Plan{}
			}
			plan.ProcFails = append(plan.ProcFails, fault.ProcFail{
				Proc: idx, At: math.Max(0, f.At-t),
			})
		}
		if plan != nil {
			sort.Slice(plan.ProcFails, func(a, b int) bool {
				return plan.ProcFails[a].Proc < plan.ProcFails[b].Proc
			})
		}
	}
	out, err := st.o.Runner.Run(s, len(procs), plan)
	dur := out.Duration
	if err != nil || !(dur > 0) || math.IsInf(dur, 0) || math.IsNaN(dur) {
		dur = 0
	}
	pj := &placedJob{
		spec: s, procs: procs, start: t,
		req: req, granted: len(procs), degraded: degraded,
		out: out, err: err,
	}
	st.placed[s.ID] = pj
	for _, q := range procs {
		st.busy[q] += dur
	}
	kind := "place"
	if degraded {
		kind = "degrade"
	}
	st.decide(t, kind, s.ID, -1, req, len(procs))
	st.push(event{time: t + dur, kind: evFinish, job: s.ID})
}

// Replay reruns the simulation with per-job partition-size overrides —
// the counterfactual: "what if job X had gotten k processors". The
// replay is a full deterministic re-simulation, so downstream effects
// (different queue waits, different fault exposure) are reflected, not
// approximated.
func Replay(specs []Spec, o Options, overrides map[string]int) (*Outcome, error) {
	merged := make(map[string]int, len(o.Overrides)+len(overrides))
	for id, k := range o.Overrides {
		merged[id] = k
	}
	for id, k := range overrides {
		merged[id] = k
	}
	o.Overrides = merged
	return Run(specs, o)
}
