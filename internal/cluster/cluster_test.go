// Unit tests for the shared-clock cluster loop with a fake runner: the
// router policies, the health model and its detection latency, the
// degradation/eviction/shedding ladder, the fault translation at
// placement, and replay byte-determinism are all pinned here without
// touching the real pipeline.
package cluster

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"paradigm/internal/fault"
	"paradigm/internal/obs"
)

// fakeRunner returns a fixed duration per job and records every call.
type fakeRunner struct {
	mu    sync.Mutex
	dur   func(spec Spec, procs int) float64
	phi   func(spec Spec, procs int) float64
	calls []fakeCall
}

type fakeCall struct {
	id    string
	procs int
	plan  *fault.Plan
}

func (f *fakeRunner) Run(spec Spec, procs int, plan *fault.Plan) (RunOutcome, error) {
	f.mu.Lock()
	f.calls = append(f.calls, fakeCall{id: spec.ID, procs: procs, plan: plan})
	f.mu.Unlock()
	d := 10.0
	if f.dur != nil {
		d = f.dur(spec, procs)
	}
	recovered := plan != nil && len(plan.ProcFails) > 0
	attempts := 0
	if recovered {
		attempts = len(plan.ProcFails)
	}
	return RunOutcome{
		Duration: d, Digest: spec.ID + "-data",
		Recovered: recovered, Attempts: attempts,
	}, nil
}

func (f *fakeRunner) Predict(spec Spec, procs int) float64 {
	if f.phi != nil {
		return f.phi(spec, procs)
	}
	return math.NaN()
}

func (f *fakeRunner) call(t *testing.T, id string) fakeCall {
	t.Helper()
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, c := range f.calls {
		if c.id == id {
			return c
		}
	}
	t.Fatalf("job %q never reached the runner", id)
	return fakeCall{}
}

func job(id string, arrive float64, procs int) Spec {
	return Spec{ID: id, Class: "silver", Priority: 1, Arrive: arrive, Procs: procs}
}

func mustRun(t *testing.T, specs []Spec, o Options) *Outcome {
	t.Helper()
	out, err := Run(specs, o)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundRobinSpreadsPartitions(t *testing.T) {
	r := &fakeRunner{}
	out := mustRun(t, []Spec{job("a", 0, 2), job("b", 0, 2)},
		Options{Procs: 8, Runner: r})
	a, _ := out.Job("a")
	b, _ := out.Job("b")
	used := map[int]bool{}
	for _, q := range append(append([]int{}, a.Procs...), b.Procs...) {
		if used[q] {
			t.Fatalf("jobs share processor %d: a=%v b=%v", q, a.Procs, b.Procs)
		}
		used[q] = true
	}
	if a.Start != 0 || b.Start != 0 {
		t.Fatalf("both jobs fit the pool but did not start together: %v, %v", a.Start, b.Start)
	}
}

func TestLeastLoadedPrefersIdleProcs(t *testing.T) {
	r := &fakeRunner{dur: func(s Spec, _ int) float64 {
		if s.ID == "long" {
			return 100
		}
		return 10
	}}
	// "long" occupies its partition for 100s; "late" arrives after
	// "short" finished, so procs that ran "short" have 10s of wear and
	// the never-used procs none — least-loaded must pick the fresh ones.
	out := mustRun(t, []Spec{job("long", 0, 2), job("short", 0, 2), job("late", 50, 2)},
		Options{Procs: 8, Router: RouterLeastLoaded, Runner: r})
	late, _ := out.Job("late")
	short, _ := out.Job("short")
	shortSet := map[int]bool{}
	for _, q := range short.Procs {
		shortSet[q] = true
	}
	for _, q := range late.Procs {
		if shortSet[q] {
			t.Fatalf("least-loaded reused worn processor %d (short=%v late=%v)",
				q, short.Procs, late.Procs)
		}
	}
}

func TestBestFitSizesByPredictedCost(t *testing.T) {
	// Φ(k) = 1: processor-seconds k·Φ grow with k, so the cheapest legal
	// size is the smallest candidate ≥ MinProcs.
	r := &fakeRunner{phi: func(_ Spec, _ int) float64 { return 1 }}
	spec := job("a", 0, 8)
	spec.MinProcs = 2
	out := mustRun(t, []Spec{spec}, Options{Procs: 8, Router: RouterBestFit, Runner: r})
	a, _ := out.Job("a")
	if a.Granted != 2 {
		t.Fatalf("best-fit granted %d procs under flat Φ, want the 2-proc minimum", a.Granted)
	}
	// Perfect speedup Φ(k) = 1/k: every size costs the same
	// processor-seconds and the tie breaks toward the full grant.
	r2 := &fakeRunner{phi: func(_ Spec, k int) float64 { return 1 / float64(k) }}
	out2 := mustRun(t, []Spec{spec}, Options{Procs: 8, Router: RouterBestFit, Runner: r2})
	a2, _ := out2.Job("a")
	if a2.Granted != 8 {
		t.Fatalf("best-fit granted %d procs under perfect speedup, want the full 8", a2.Granted)
	}
	// Unknown Φ falls back to the full grant.
	r3 := &fakeRunner{}
	out3 := mustRun(t, []Spec{spec}, Options{Procs: 8, Router: RouterBestFit, Runner: r3})
	a3, _ := out3.Job("a")
	if a3.Granted != 8 {
		t.Fatalf("best-fit granted %d procs with unknown Φ, want the full grant", a3.Granted)
	}
}

func TestFaultTranslationAtPlacement(t *testing.T) {
	r := &fakeRunner{}
	// Pool processor 2 dies at t=3; the job holds the whole pool from
	// t=0, so its partition-relative plan says local proc 2 dies at 3.
	out := mustRun(t, []Spec{job("a", 0, 4)}, Options{
		Procs:  4,
		Faults: &fault.Plan{ProcFails: []fault.ProcFail{{Proc: 2, At: 3}}},
		Runner: r, DetectLatency: 1})
	c := r.call(t, "a")
	if c.plan == nil || len(c.plan.ProcFails) != 1 {
		t.Fatalf("job plan = %+v, want one translated ProcFail", c.plan)
	}
	if pf := c.plan.ProcFails[0]; pf.Proc != 2 || pf.At != 3 {
		t.Fatalf("translated fault = %+v, want {Proc:2 At:3}", pf)
	}
	a, _ := out.Job("a")
	if !a.Recovered {
		t.Fatal("job holding a dying processor did not report recovery")
	}
}

func TestSuspectWindowPlacesWithImmediateFault(t *testing.T) {
	r := &fakeRunner{dur: func(Spec, int) float64 { return 4 }}
	rec := obs.NewRecorder()
	// Processor 1 fails in fact at t=2 and is detected at t=2+10. A job
	// arriving at t=5 (inside the suspect window) still gets the full
	// pool — including the suspect processor, carried as a
	// relative-time-0 death it must absorb internally.
	out := mustRun(t, []Spec{job("early", 0, 2), job("mid", 5, 4)}, Options{
		Procs: 4, DetectLatency: 10,
		Faults:   &fault.Plan{ProcFails: []fault.ProcFail{{Proc: 1, At: 2}}},
		Runner:   r,
		Observer: rec,
	})
	// The early 2-proc job on procs {0,1} sees the fault at relative 2.
	c := r.call(t, "early")
	if c.plan == nil || c.plan.ProcFails[0].At != 2 {
		t.Fatalf("early plan = %+v, want fault at relative t=2", c.plan)
	}
	cm := r.call(t, "mid")
	if cm.procs != 4 {
		t.Fatalf("mid granted %d procs, want all 4 during the suspect window", cm.procs)
	}
	var zero bool
	for _, pf := range cm.plan.ProcFails {
		if pf.At == 0 {
			zero = true
		}
	}
	if !zero {
		t.Fatalf("mid plan = %+v, want a relative-time-0 death for the suspect proc", cm.plan)
	}
	// Health trace: suspect at 2, dead at 12.
	var states []string
	for _, e := range rec.Events() {
		if ph, ok := e.(obs.PoolHealth); ok {
			states = append(states, fmt.Sprintf("%s@%g", ph.State, ph.Time))
		}
	}
	want := "suspect@2,dead@12"
	if got := strings.Join(states, ","); got != want {
		t.Fatalf("health transitions = %s, want %s", got, want)
	}
	if out.Procs != 4 {
		t.Fatalf("outcome procs = %d", out.Procs)
	}
}

func TestDegradedPlacementAfterPoolShrink(t *testing.T) {
	r := &fakeRunner{}
	// Four of eight processors die and are detected before the big job
	// arrives: the pool can never grant 8 again, so the job is placed
	// degraded on the 4 survivors.
	spec := job("big", 20, 8)
	spec.MinProcs = 2
	out := mustRun(t, []Spec{spec}, Options{
		Procs: 8, DetectLatency: 1,
		Faults: &fault.Plan{ProcFails: []fault.ProcFail{
			{Proc: 0, At: 1}, {Proc: 2, At: 1}, {Proc: 4, At: 2}, {Proc: 6, At: 2},
		}},
		Runner: r,
	})
	b, ok := out.Job("big")
	if !ok {
		t.Fatal("big job lost")
	}
	if !b.Degraded || b.Granted != 4 || b.Requested != 8 {
		t.Fatalf("big: degraded=%t granted=%d requested=%d, want degraded 4/8",
			b.Degraded, b.Granted, b.Requested)
	}
	for _, q := range b.Procs {
		if q%2 == 0 {
			t.Fatalf("degraded partition %v contains dead processor %d", b.Procs, q)
		}
	}
	found := false
	for _, d := range out.Decisions {
		if d.Decision == "degrade" && d.Job == "big" {
			found = true
		}
	}
	if !found {
		t.Fatal("no degrade decision traced")
	}
}

func TestEvictionBelowMinProcs(t *testing.T) {
	r := &fakeRunner{}
	spec := job("doomed", 10, 4)
	spec.MinProcs = 3
	out := mustRun(t, []Spec{spec}, Options{
		Procs: 4, DetectLatency: 0,
		Faults: &fault.Plan{ProcFails: []fault.ProcFail{
			{Proc: 0, At: 1}, {Proc: 1, At: 1},
		}},
		Runner: r,
	})
	if len(out.Evicted) != 1 || out.Evicted[0] != "doomed" {
		t.Fatalf("Evicted = %v, want [doomed]", out.Evicted)
	}
	if _, ok := out.Job("doomed"); ok {
		t.Fatal("evicted job also reported as completed")
	}
}

func TestShedByClassPriority(t *testing.T) {
	r := &fakeRunner{dur: func(Spec, int) float64 { return 100 }}
	hog := job("hog", 0, 4) // occupies the whole pool, forcing a queue
	gold := Spec{ID: "gold", Class: "gold", Priority: 3, Arrive: 1, Procs: 2}
	silver := Spec{ID: "silver", Class: "silver", Priority: 2, Arrive: 2, Procs: 2}
	bronze1 := Spec{ID: "bronze1", Class: "bronze", Priority: 1, Arrive: 3, Procs: 2}
	bronze2 := Spec{ID: "bronze2", Class: "bronze", Priority: 1, Arrive: 4, Procs: 2}
	out := mustRun(t, []Spec{hog, gold, silver, bronze1, bronze2},
		Options{Procs: 4, MaxPending: 3, Runner: r})
	// The fourth pending arrival overflows MaxPending=3: the victim must
	// be the lowest class, latest arrival — bronze2.
	if len(out.Shed) != 1 || out.Shed[0] != "bronze2" {
		t.Fatalf("Shed = %v, want [bronze2] (lowest priority, latest arrival)", out.Shed)
	}
	for _, id := range []string{"hog", "gold", "silver", "bronze1"} {
		if _, ok := out.Job(id); !ok {
			t.Fatalf("job %s lost (completed: %d, shed: %v)", id, len(out.Jobs), out.Shed)
		}
	}
}

func TestPriorityOrdersAdmission(t *testing.T) {
	r := &fakeRunner{dur: func(Spec, int) float64 { return 10 }}
	hog := job("hog", 0, 4)
	low := Spec{ID: "low", Class: "bronze", Priority: 0, Arrive: 1, Procs: 4}
	high := Spec{ID: "high", Class: "gold", Priority: 5, Arrive: 2, Procs: 4}
	out := mustRun(t, []Spec{hog, low, high}, Options{Procs: 4, Runner: r})
	l, _ := out.Job("low")
	h, _ := out.Job("high")
	if !(h.Start < l.Start) {
		t.Fatalf("high-priority job started at %g, low at %g — want gold first", h.Start, l.Start)
	}
}

func TestReplayByteDeterminism(t *testing.T) {
	mk := func() ([]Spec, Options) {
		plan, err := fault.Rand(7, fault.RandOptions{Procs: 8, MakespanHint: 40, ProcFails: 2})
		if err != nil {
			t.Fatal(err)
		}
		specs := []Spec{
			job("a", 0, 4), job("b", 1, 4), job("c", 2, 2),
			{ID: "d", Class: "gold", Priority: 3, Arrive: 3, Procs: 8, MinProcs: 2},
		}
		return specs, Options{
			Procs: 8, Router: RouterLeastLoaded, DetectLatency: 2,
			Faults: plan,
			Runner: &fakeRunner{dur: func(s Spec, k int) float64 { return 8 / float64(k) * 16 }},
		}
	}
	s1, o1 := mk()
	s2, o2 := mk()
	a := mustRun(t, s1, o1)
	b := mustRun(t, s2, o2)
	if a.String() != b.String() {
		t.Fatalf("same inputs, different outcomes:\n--- a\n%s--- b\n%s", a, b)
	}
	// Counterfactual: force job a to 2 procs. Byte-deterministic too,
	// and visibly different from the base run.
	s3, o3 := mk()
	s4, o4 := mk()
	c1, err := Replay(s3, o3, map[string]int{"a": 2})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Replay(s4, o4, map[string]int{"a": 2})
	if err != nil {
		t.Fatal(err)
	}
	if c1.String() != c2.String() {
		t.Fatal("counterfactual replay is not byte-deterministic")
	}
	ja, _ := c1.Job("a")
	if ja.Granted != 2 {
		t.Fatalf("override granted %d procs, want 2", ja.Granted)
	}
	if c1.String() == a.String() {
		t.Fatal("counterfactual with a different grant produced the identical outcome")
	}
}

func TestUtilizationAndDecisionTrace(t *testing.T) {
	r := &fakeRunner{dur: func(Spec, int) float64 { return 10 }}
	reg := obs.NewRegistry()
	out := mustRun(t, []Spec{job("a", 0, 4)}, Options{
		Procs: 8, Runner: r, Observer: obs.MetricsObserver(reg),
	})
	// One 4-proc job for 10s on an 8-proc pool that ends at t=10.
	if math.Abs(out.Utilization-0.5) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.5", out.Utilization)
	}
	text := reg.Snapshot().Text()
	for _, m := range []string{"cluster_decisions_total", "cluster_place_total", "cluster_finish_total"} {
		if !strings.Contains(text, m) {
			t.Fatalf("metrics snapshot missing %q:\n%s", m, text)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	r := &fakeRunner{}
	cases := []struct {
		name  string
		specs []Spec
		o     Options
	}{
		{"no-runner", []Spec{job("a", 0, 1)}, Options{Procs: 4}},
		{"zero-procs", []Spec{job("a", 0, 1)}, Options{Runner: r}},
		{"dup-id", []Spec{job("a", 0, 1), job("a", 0, 1)}, Options{Procs: 4, Runner: r}},
		{"no-id", []Spec{{Procs: 1}}, Options{Procs: 4, Runner: r}},
		{"bad-req", []Spec{{ID: "a", Procs: 0}}, Options{Procs: 4, Runner: r}},
		{"min-gt-req", []Spec{{ID: "a", Procs: 2, MinProcs: 4}}, Options{Procs: 4, Runner: r}},
		{"nan-arrive", []Spec{{ID: "a", Procs: 1, Arrive: math.NaN()}}, Options{Procs: 4, Runner: r}},
		{"bad-router", []Spec{job("a", 0, 1)}, Options{Procs: 4, Runner: r, Router: "mystery"}},
		{"msg-fault-pool", []Spec{job("a", 0, 1)}, Options{Procs: 4, Runner: r,
			Faults: &fault.Plan{MsgFaults: []fault.MsgFault{{Kind: fault.Drop, Seq: 1}}}}},
		{"invalid-pool-plan", []Spec{job("a", 0, 1)}, Options{Procs: 4, Runner: r,
			Faults: &fault.Plan{ProcFails: []fault.ProcFail{{Proc: 9, At: 1}}}}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.specs, tc.o); err == nil {
			t.Errorf("%s: Run accepted invalid input", tc.name)
		}
	}
}
