// Pluggable partition routers: given a job and the free processors, a
// router picks which processors (and, within [Min, Grant], how many)
// form the job's partition. Routers may keep state across decisions —
// the loop constructs one fresh instance per run, so a stateful policy
// still replays deterministically.
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Router names understood by Options.Router.
const (
	RouterRoundRobin  = "round-robin"
	RouterLeastLoaded = "least-loaded"
	RouterBestFit     = "best-fit"
)

// RouteContext is the information a router decides from.
type RouteContext struct {
	// Free is the assignable processor set, ascending. Grant is the
	// partition size on offer; Min the smallest size the job accepts.
	Free  []int
	Grant int
	Min   int
	// Busy reports a processor's cumulative committed work.
	Busy func(proc int) float64
	// Predict estimates the job's objective Φ at a partition size
	// (NaN/Inf = unknown) — the best-fit cost surface.
	Predict func(procs int) float64
}

// Router picks a partition: a subset of rc.Free with len in
// [rc.Min, rc.Grant]. An invalid answer (wrong size, non-free or
// duplicated processors) falls back to the first-free prefix.
type Router interface {
	Name() string
	Route(spec Spec, rc RouteContext) []int
}

// NewNamedRouter resolves a router name to a fresh instance — the same
// resolution Options.Router uses, exported for hosts that drive routing
// outside the virtual-time loop (cmd/paradigmd's wall-clock pool).
func NewNamedRouter(name string) (Router, error) {
	return newRouter(Options{Router: name})
}

// newRouter resolves the Options routing policy to a fresh instance.
func newRouter(o Options) (Router, error) {
	if o.NewRouter != nil {
		r := o.NewRouter()
		if r == nil {
			return nil, fmt.Errorf("cluster: NewRouter returned nil")
		}
		return r, nil
	}
	switch o.Router {
	case "", RouterRoundRobin:
		return &roundRobin{}, nil
	case RouterLeastLoaded:
		return leastLoaded{}, nil
	case RouterBestFit:
		return bestFit{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router %q (want %s, %s or %s)",
			o.Router, RouterRoundRobin, RouterLeastLoaded, RouterBestFit)
	}
}

// roundRobin rotates its starting point through the free list on each
// placement, spreading partitions across the pool.
type roundRobin struct{ turn int }

func (r *roundRobin) Name() string { return RouterRoundRobin }

func (r *roundRobin) Route(_ Spec, rc RouteContext) []int {
	n := len(rc.Free)
	out := make([]int, 0, rc.Grant)
	start := r.turn % n
	for i := 0; i < n && len(out) < rc.Grant; i++ {
		out = append(out, rc.Free[(start+i)%n])
	}
	r.turn++
	return out
}

// leastLoaded picks the processors with the least cumulative committed
// work (ties broken by index), balancing wear across the pool.
type leastLoaded struct{}

func (leastLoaded) Name() string { return RouterLeastLoaded }

func (leastLoaded) Route(_ Spec, rc RouteContext) []int {
	cand := append([]int(nil), rc.Free...)
	sort.SliceStable(cand, func(a, b int) bool {
		ba, bb := rc.Busy(cand[a]), rc.Busy(cand[b])
		if ba != bb {
			return ba < bb
		}
		return cand[a] < cand[b]
	})
	return cand[:rc.Grant]
}

// bestFit sizes the partition by predicted cost: among candidate sizes
// (the full grant and every power of two in [Min, Grant]) it minimizes
// Φ(k)·k — predicted processor-seconds, the capacity the job takes from
// the pool — breaking ties toward the larger partition (finish sooner
// at equal cost). Unknown predictions fall back to the full grant.
type bestFit struct{}

func (bestFit) Name() string { return RouterBestFit }

func (bestFit) Route(_ Spec, rc RouteContext) []int {
	sizes := []int{rc.Grant}
	for k := 1; k < rc.Grant; k *= 2 {
		if k >= rc.Min {
			sizes = append(sizes, k)
		}
	}
	best, bestScore := rc.Grant, math.Inf(1)
	for _, k := range sizes {
		phi := rc.Predict(k)
		if math.IsNaN(phi) || math.IsInf(phi, 0) || phi < 0 {
			continue
		}
		score := phi * float64(k)
		if score < bestScore || (score == bestScore && k > best) {
			best, bestScore = k, score
		}
	}
	return append([]int(nil), rc.Free[:best]...)
}
