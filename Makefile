# Developer / CI entry points. `make ci` is the gate: formatting, vet,
# build, the full test suite under the race detector, a fuzz smoke run
# over the oracle's targets, and a short benchmark smoke run proving the
# benchmarks still execute.

GO ?= go
FUZZTIME ?= 10s

.PHONY: ci fmt-check vet build test test-race race fuzz-smoke bench-smoke bench-current bench-json bench-pr2 bench-pr3 bench-pr5 bench-pr6 bench-pr8 bench-pr9 bench-pr10 smoke-paradigmd smoke-paradigmd-chaos smoke-paradigmd-tenants smoke-paradigmd-cluster

ci: fmt-check vet build test-race fuzz-smoke bench-smoke bench-pr2 bench-pr3 bench-pr5 bench-pr6 bench-pr8 bench-pr9 bench-pr10 smoke-paradigmd smoke-paradigmd-chaos smoke-paradigmd-tenants smoke-paradigmd-cluster

# gofmt gate: fails listing the offending files, mutating nothing.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 suite under the race detector — the CI form of `make test`.
test-race:
	$(GO) test -race ./...

race: test-race

# Coverage-guided smoke run of every oracle fuzz target (the committed
# seed corpora also run as plain subtests under `make test`). Each target
# gets FUZZTIME of exploration; a crasher fails the gate.
fuzz-smoke:
	$(GO) test ./internal/oracle/ -run '^$$' -fuzz '^FuzzSolve$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -run '^$$' -fuzz '^FuzzPSA$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/oracle/ -run '^$$' -fuzz '^FuzzMDGParse$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ckpt/ -run '^$$' -fuzz '^FuzzWALDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/jobstore/ -run '^$$' -fuzz '^FuzzJobJournalDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/machine/ -run '^$$' -fuzz '^FuzzMachineSpec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/admission/ -run '^$$' -fuzz '^FuzzPolicyConfigDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/fault/ -run '^$$' -fuzz '^FuzzFaultPlan$$' -fuzztime $(FUZZTIME)

# One iteration of the calibration- and allocation-path benchmarks: fast,
# and enough to catch a benchmark that no longer compiles or errors out.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTable2TransferFit|BenchmarkAllocSolve' -benchtime=1x -benchmem .

# Full benchmark sweep, one iteration each, saved for the trajectory
# harness (see BENCH_PR1.json and cmd/benchjson).
bench-current:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem . | tee bench_current.txt

# Regenerate the trajectory JSON from saved baseline/current runs.
bench-json:
	$(GO) run ./cmd/benchjson -baseline bench_baseline.txt -current bench_current.txt -o BENCH.json

# PR 2 observability benchmarks: the nil-observer vs with-observer Run
# pair (the overhead budget of the event layer) plus the allocation fast
# path, folded into BENCH_PR2.json for the trajectory harness.
bench-pr2:
	$(GO) test -run '^$$' -bench 'BenchmarkRunNilObserver|BenchmarkRunWithObserver|BenchmarkAllocSolve' -benchtime=1x -benchmem . | tee bench_pr2.txt
	$(GO) run ./cmd/benchjson -current bench_pr2.txt -label "PR 2: observability layer (Run nil-observer vs with-observer)" -o BENCH_PR2.json

# PR 3 fault-tolerance benchmarks: the fault-free Run baseline vs a run
# that loses a processor mid-flight and replans on the survivors — the
# cost of one full survive-and-recover cycle — folded into
# BENCH_PR3.json for the trajectory harness.
bench-pr3:
	$(GO) test -run '^$$' -bench 'BenchmarkRunNoFaults|BenchmarkRunWithRecovery' -benchtime=1x -benchmem . | tee bench_pr3.txt
	$(GO) run ./cmd/benchjson -current bench_pr3.txt -label "PR 3: fault injection + recovery (Run no-faults vs with-recovery)" -o BENCH_PR3.json

# PR 5 crash-safety benchmarks: the production-scale Run baseline vs the
# same run committing every stage boundary to the write-ahead checkpoint
# log (the <3% overhead budget of DESIGN.md §11), folded into
# BENCH_PR5.json for the trajectory harness.
bench-pr5:
	$(GO) test -run '^$$' -bench 'BenchmarkRunNoCheckpoint|BenchmarkRunWithCheckpoint' -benchtime=1x -benchmem . | tee bench_pr5.txt
	$(GO) run ./cmd/benchjson -current bench_pr5.txt -label "PR 5: crash-safe checkpointing (Run without vs with WAL)" -o BENCH_PR5.json

# PR 6 solver raw-speed benchmarks: the single-start baseline vs the
# racing multi-start (the ≥5× pruning win), the warm-start cache's
# exact-hit replay (the ≥100× memoization win), and the consensus-ADMM
# decomposition scaling over subgraph count on a 1000-node MDG — folded
# into BENCH_PR6.json for the trajectory harness.
bench-pr6:
	$(GO) test -run '^$$' -bench 'BenchmarkAllocSolve' -benchtime=1x -benchmem . | tee bench_pr6.txt
	$(GO) run ./cmd/benchjson -current bench_pr6.txt -label "PR 6: solver raw speed (racing multi-start, warm cache, consensus ADMM)" -o BENCH_PR6.json

# PR 8 durability benchmarks: the submit path over live HTTP without vs
# with the job journal's commit-before-acknowledge — the <5% overhead
# budget of the durable accept path — folded into BENCH_PR8.json for
# the trajectory harness.
bench-pr8:
	$(GO) test ./cmd/paradigmd/ -run '^$$' -bench 'BenchmarkSubmit' -benchtime=100x -benchmem | tee bench_pr8.txt
	$(GO) run ./cmd/benchjson -current bench_pr8.txt -label "PR 8: durable job journal (submit path without vs with journal)" -o BENCH_PR8.json

# PR 9 multi-tenant load benchmarks: the seeded Poisson/Gamma arrival
# wave (internal/loadgen) from two tenants against a cold server (every
# plan solved) vs a warm one (plans replayed from the schedule cache),
# reporting jobs/sec and p99 submit→terminal latency — folded into
# BENCH_PR9.json for the trajectory harness.
bench-pr9:
	$(GO) test ./cmd/paradigmd/ -run '^$$' -bench 'BenchmarkServiceLoad' -benchtime=1x | tee bench_pr9.txt
	$(GO) run ./cmd/benchjson -current bench_pr9.txt -label "PR 9: multi-tenant service load (cold solve vs schedule-cache warm)" -o BENCH_PR9.json

# PR 10 cluster-mode load benchmarks: the seeded arrival wave against a
# cluster-mode paradigmd (shared processor pool, least-loaded router),
# with and without a partition death every 8th placement, cold vs warm
# schedule cache — jobs/sec and p99 folded into BENCH_PR10.json for the
# trajectory harness.
bench-pr10:
	$(GO) test ./cmd/paradigmd/ -run '^$$' -bench 'BenchmarkClusterLoad' -benchtime=1x | tee bench_pr10.txt
	$(GO) run ./cmd/benchjson -current bench_pr10.txt -label "PR 10: cluster-mode load (pool faults vs fault-free, cold vs warm)" -o BENCH_PR10.json

# Boot the scheduling service on an ephemeral port, submit a job, poll
# it to completion, fetch its schedule and the metrics page, then drain:
# the end-to-end smoke of cmd/paradigmd.
smoke-paradigmd:
	$(GO) run ./cmd/paradigmd -addr 127.0.0.1:0 -smoke

# The service-level chaos gate: SIGKILL a paradigmd subprocess with
# acknowledged jobs in flight, restart it on the same checkpoint
# directory, and require every acknowledged job to finish byte-identical
# (by result digest) to an oracle-validated crash-free run.
smoke-paradigmd-chaos:
	$(GO) test ./cmd/paradigmd/ -run '^TestChaosKillRestart$$' -count=1 -timeout 600s -v

# The multi-tenant service gate: tiered admission (gold tenant ahead of
# free, over-bucket tenant 429'd while others proceed), submit
# coalescing (one solve for concurrent identical submits), per-tenant
# isolation of job listings, and the fairness/cache counters on
# /metrics.
smoke-paradigmd-tenants:
	$(GO) test ./cmd/paradigmd/ -run '^TestServiceTenantAdmission$$' -count=1 -v

# The cluster chaos gate, both faces: the library-level shared-clock
# simulation under -race (seeded pool deaths mid-stream across 12
# concurrent jobs, every completed job's data digest byte-identical to
# its fault-free run, deterministic SLO-class shedding, byte-exact
# counterfactual replay) and the service-level cluster mode (partition
# deaths every 3rd placement, zero acknowledged jobs lost, oversized
# request degraded onto the shrunken pool instead of refused).
smoke-paradigmd-cluster:
	$(GO) test . -race -run '^TestCluster' -count=1 -timeout 600s
	$(GO) test ./cmd/paradigmd/ -run '^TestServiceCluster' -count=1 -v
