# Developer / CI entry points. `make ci` is the gate: vet, build, the
# full test suite under the race detector, and a short benchmark smoke
# run proving the benchmarks still execute.

GO ?= go

.PHONY: ci vet build test race bench-smoke bench-current bench-json

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the calibration- and allocation-path benchmarks: fast,
# and enough to catch a benchmark that no longer compiles or errors out.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkTable2TransferFit|BenchmarkAllocSolve' -benchtime=1x -benchmem .

# Full benchmark sweep, one iteration each, saved for the trajectory
# harness (see BENCH_PR1.json and cmd/benchjson).
bench-current:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem . | tee bench_current.txt

# Regenerate the trajectory JSON from saved baseline/current runs.
bench-json:
	$(GO) run ./cmd/benchjson -baseline bench_baseline.txt -current bench_current.txt -o BENCH.json
