// Cluster mode: paradigmd runs its accepted jobs on one shared
// wall-clock processor pool instead of conjuring a dedicated machine per
// job. A job waits for a partition (placed by the same pluggable routers
// as the virtual-time simulator in internal/cluster), runs the pipeline
// on exactly the processors it was granted, and releases them on
// completion. The robustness surface carries over from the simulator:
//
//   - Shrink before reject: when live capacity drops below a job's
//     request, the job is granted min(request, alive) processors and
//     marked degraded rather than refused — an acknowledged job is never
//     lost to pool shrinkage.
//   - Deterministic fault injection (-cluster-faults N): every Nth
//     placement loses one partition processor mid-run. The pipeline's
//     PR 3 recovery driver salvages and re-places onto the partition's
//     survivors, and the dead processor retires from the pool, so the
//     service degrades the way a real cluster does. Injection stops once
//     the pool is nearly exhausted (alive <= minAlivePool) — degrade,
//     don't collapse.
//
// The pool publishes its health as gauges (alive/free/dead) and its
// decisions as counters (placements, degraded grants, injected faults,
// retirements) on /metrics.
package main

import (
	"fmt"
	"sort"
	"sync"

	"paradigm"
	"paradigm/internal/cluster"
)

// minAlivePool is the degradation floor: fault injection stops rather
// than retire the pool below this many live processors.
const minAlivePool = 2

// clusterConfig is the resolved cluster-mode command line.
type clusterConfig struct {
	procs      int    // pool size (0: cluster mode off)
	router     string // partition router name
	faultEvery int    // kill one partition proc every Nth placement (0: none)
}

func (c clusterConfig) enabled() bool { return c.procs > 0 }

// grant is one placement: the pool processors a job holds, whether the
// grant was shrunk below the request, and which partition-local
// processor (if any) is fated to die mid-run and retire.
type grant struct {
	procs      []int // pool processor ids, ascending
	degraded   bool
	faultLocal int // partition-local index to kill, -1 for none
}

// clusterPool is the wall-clock shared pool. All state is guarded by mu;
// acquire blocks on cond until a partition is available.
type clusterPool struct {
	mu   sync.Mutex
	cond *sync.Cond

	router     cluster.Router
	total      int
	faultEvery int

	free map[int]bool
	dead map[int]bool
	busy map[int]float64 // cumulative committed wall-seconds per proc

	placements uint64
	reg        *paradigm.Metrics
}

func newClusterPool(cfg clusterConfig, reg *paradigm.Metrics) (*clusterPool, error) {
	if cfg.procs < 1 {
		return nil, fmt.Errorf("cluster mode needs a positive -cluster-procs, got %d", cfg.procs)
	}
	if cfg.faultEvery < 0 {
		return nil, fmt.Errorf("-cluster-faults %d: want a non-negative placement period", cfg.faultEvery)
	}
	name := cfg.router
	if name == "" {
		name = cluster.RouterRoundRobin
	}
	r, err := cluster.NewNamedRouter(name)
	if err != nil {
		return nil, err
	}
	p := &clusterPool{
		router: r, total: cfg.procs, faultEvery: cfg.faultEvery,
		free: make(map[int]bool, cfg.procs),
		dead: map[int]bool{},
		busy: map[int]float64{},
		reg:  reg,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < cfg.procs; i++ {
		p.free[i] = true
	}
	p.publishLocked()
	return p, nil
}

// publishLocked refreshes the pool health gauges; callers hold mu.
func (p *clusterPool) publishLocked() {
	alive := p.total - len(p.dead)
	p.reg.Gauge("paradigmd_cluster_pool_alive").Set(float64(alive))
	p.reg.Gauge("paradigmd_cluster_pool_free").Set(float64(len(p.free)))
	p.reg.Gauge("paradigmd_cluster_pool_dead").Set(float64(len(p.dead)))
}

// freeListLocked returns the free processors ascending; callers hold mu.
func (p *clusterPool) freeListLocked() []int {
	list := make([]int, 0, len(p.free))
	for q := range p.free {
		list = append(list, q)
	}
	sort.Ints(list)
	return list
}

// acquire blocks until the pool can host the job, then places it via the
// router. Shrink-before-reject: when live capacity is below the request
// the job is granted every live processor instead of being refused; only
// a fully dead pool errors. predict estimates the job's Φ at a partition
// size for the best-fit policy (NaN = unknown).
func (p *clusterPool) acquire(spec cluster.Spec, predict func(procs int) float64) (grant, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		alive := p.total - len(p.dead)
		if alive < 1 {
			return grant{}, fmt.Errorf("cluster pool exhausted: all %d processors dead", p.total)
		}
		want := spec.Procs
		if want > alive {
			want = alive
		}
		freeList := p.freeListLocked()
		if len(freeList) >= want {
			procs := p.placeLocked(spec, freeList, want, predict)
			g := grant{procs: procs, degraded: want < spec.Procs, faultLocal: -1}
			p.placements++
			p.reg.Counter("paradigmd_cluster_placements_total").Inc()
			if g.degraded {
				p.reg.Counter("paradigmd_cluster_degraded_total").Inc()
			}
			// Deterministic fault injection: every Nth placement loses its
			// highest-ranked partition processor — but never a singleton
			// partition (nothing to recover onto) and never below the pool
			// floor (degrade, don't collapse).
			if p.faultEvery > 0 && p.placements%uint64(p.faultEvery) == 0 &&
				len(procs) >= 2 && alive > minAlivePool {
				g.faultLocal = len(procs) - 1
				p.reg.Counter("paradigmd_cluster_faults_injected_total").Inc()
			}
			p.publishLocked()
			return g, nil
		}
		p.cond.Wait()
	}
}

// placeLocked routes the job onto want free processors, validating the
// router's answer the same way the virtual-time loop does: an invalid
// partition (wrong size, non-free or duplicate processors) falls back to
// the first-free prefix. Callers hold mu.
func (p *clusterPool) placeLocked(spec cluster.Spec, freeList []int, want int, predict func(int) float64) []int {
	rc := cluster.RouteContext{
		Free:    freeList,
		Grant:   want,
		Min:     want,
		Busy:    func(q int) float64 { return p.busy[q] },
		Predict: predict,
	}
	picked := p.router.Route(spec, rc)
	if !validPartition(picked, p.free, want) {
		picked = freeList[:want]
	}
	procs := append([]int(nil), picked...)
	sort.Ints(procs)
	for _, q := range procs {
		delete(p.free, q)
	}
	return procs
}

// validPartition reports whether a routed partition is exactly want
// distinct free processors. The wall-clock pool fixes the partition size
// before routing (capacity is committed on grant), so unlike the
// simulator's [Min, Grant] window the size here is exact.
func validPartition(picked []int, free map[int]bool, want int) bool {
	if len(picked) != want {
		return false
	}
	seen := make(map[int]bool, len(picked))
	for _, q := range picked {
		if !free[q] || seen[q] {
			return false
		}
		seen[q] = true
	}
	return true
}

// release returns a grant's processors to the pool, charging each with
// the job's wall-clock seconds. The processor fated to die (faultLocal)
// retires to the dead set instead of the free list — the pool shrinks
// exactly when the simulated partition did.
func (p *clusterPool) release(g grant, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, q := range g.procs {
		p.busy[q] += seconds
		if i == g.faultLocal {
			p.dead[q] = true
			p.reg.Counter("paradigmd_cluster_retired_total").Inc()
			continue
		}
		p.free[q] = true
	}
	p.publishLocked()
	p.cond.Broadcast()
}
