// Command paradigmd is a long-running scheduling service over the
// PARADIGM pipeline: submit an allocation-and-scheduling job, poll its
// status, fetch the resulting schedule, and scrape the pipeline's
// metrics registry — with the crash-safety surface of the library wired
// through (per-job write-ahead checkpoints, per-stage budgets, a shared
// circuit breaker around the convex solve, and panic containment at
// every boundary).
//
// Endpoints:
//
//	POST /jobs               {"program":"cmm","size":32,"procs":8}  -> 202 {"id":...}
//	GET  /jobs               job summaries, submission order
//	GET  /jobs/{id}          one job's status and result summary
//	GET  /jobs/{id}/schedule the finished schedule (text table)
//	GET  /metrics            metrics registry, deterministic text form
//	GET  /healthz            "ok" (200) or "draining" (503)
//
// Admission control: the submit queue is bounded; a full queue sheds
// load with 429, a draining server refuses with 503. SIGTERM/SIGINT
// starts a graceful drain — accepted jobs finish, new ones are refused,
// then the listener shuts down.
//
//	paradigmd -addr :8080 -workers 2 -queue 16 -checkpoint-dir /var/lib/paradigm
//	paradigmd -smoke   # self-contained start/submit/poll/drain cycle
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"paradigm"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers = flag.Int("workers", 2, "concurrent pipeline workers")
		queue   = flag.Int("queue", 16, "bounded submit queue size (full: 429)")
		ckptDir = flag.String("checkpoint-dir", "", "directory for per-job write-ahead checkpoint logs (empty: no checkpointing)")
		machine = flag.String("machine", "cm5", "machine: a builtin name (cm5, paragon, cm5-hetero8, paragon-memcap8) or a path to a machine-spec JSON file")
		budget  = flag.Duration("stage-budget", 0, "per-stage deadline applied to every pipeline stage (0: unbounded)")
		smoke   = flag.Bool("smoke", false, "start, run one job end to end, drain, and exit (CI smoke mode)")
	)
	flag.Parse()
	if err := run(*addr, *machine, *ckptDir, *workers, *queue, *budget, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "paradigmd:", err)
		os.Exit(1)
	}
}

func run(addr, machine, ckptDir string, workers, queue int, budget time.Duration, smoke bool) error {
	if workers < 1 || queue < 1 {
		return fmt.Errorf("need at least one worker and a positive queue size")
	}
	// Machine resolution: the two classic profiles keep the historical
	// trained (training-sets) path; any other builtin name or spec file
	// loads through the machine database as a file backend.
	var (
		mach    machineModel
		profile = paradigm.NewCM5
	)
	switch machine {
	case "cm5", "paragon":
		if machine == "paragon" {
			profile = paradigm.NewParagon
		}
		cal, err := paradigm.Calibrate(profile(64))
		if err != nil {
			return err
		}
		mach = machineModel{
			src: cal, cal: cal, profile: profile,
			name: profile(64).Name, kind: paradigm.MachineTrained,
		}
	default:
		mb, err := paradigm.ResolveMachine(machine)
		if err != nil {
			return err
		}
		mach = machineModel{
			src: mb, backend: mb,
			profile: func(p int) paradigm.Machine { return mb.SimParams().WithProcs(p) },
			name:    mb.Name(), kind: mb.Kind(),
		}
	}
	srv := newServer(mach, ckptDir, queue, budget)
	srv.start(workers)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("paradigmd listening on %s (%d workers, queue %d)", ln.Addr(), workers, queue)

	if smoke {
		machInfo := fmt.Sprintf("paradigmd_machine_info{name=%q,kind=%q} 1", mach.name, mach.kind)
		if err := smokeCycle(ln.Addr().String(), machInfo); err != nil {
			return fmt.Errorf("smoke: %w", err)
		}
		srv.drain()
		shutdownHTTP(hs)
		<-serveErr
		fmt.Println("smoke ok: submitted, completed, fetched schedule and metrics, drained")
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("received %v: draining", s)
		srv.drain()
		shutdownHTTP(hs)
		<-serveErr
		log.Printf("drained %d jobs, exiting", srv.completed())
		return nil
	case err := <-serveErr:
		return err
	}
}

func shutdownHTTP(hs *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
}

// jobRequest is the submit payload.
type jobRequest struct {
	Program string `json:"program"`           // cmm | strassen
	Size    int    `json:"size"`              // matrix size
	Procs   int    `json:"procs"`             // system size p
	Recover int    `json:"recover,omitempty"` // max recovery attempts
}

// jobView is the status representation returned by the API.
type jobView struct {
	ID      string  `json:"id"`
	Program string  `json:"program"`
	Size    int     `json:"size"`
	Procs   int     `json:"procs"`
	Status  string  `json:"status"` // queued | running | done | failed
	Error   string  `json:"error,omitempty"`
	Phi     float64 `json:"phi,omitempty"`
	Actual  float64 `json:"actual,omitempty"`
}

type job struct {
	jobView
	req jobRequest
	res *paradigm.Result
	p   *paradigm.Program
}

// machineModel bundles the service's resolved machine: a loop-pricing
// source for the program builders, either a calibration (trained path)
// or a backend (everything else) for the pipeline, and the label the
// /metrics endpoint reports.
type machineModel struct {
	src     paradigm.LoopSource
	cal     *paradigm.Calibration   // trained path only
	backend paradigm.MachineBackend // file/analytical path only
	profile func(int) paradigm.Machine
	name    string
	kind    paradigm.MachineKind
}

type server struct {
	mach       machineModel
	ckptDir    string
	budgets    paradigm.StageBudgets
	breaker    *paradigm.Breaker
	reg        *paradigm.Metrics
	obs        paradigm.Observer
	allocCache *paradigm.AllocCache

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	next  int

	queue    chan *job
	drainCh  chan struct{}
	draining atomic.Bool
	wg       sync.WaitGroup
	done     atomic.Uint64
}

func newServer(mach machineModel, ckptDir string, queue int, budget time.Duration) *server {
	reg := paradigm.NewMetrics()
	// An info-style gauge surfaces the resolved machine on /metrics.
	reg.Gauge(fmt.Sprintf("paradigmd_machine_info{name=%q,kind=%q}", mach.name, mach.kind)).Set(1)
	return &server{
		mach:    mach,
		ckptDir: ckptDir,
		budgets: paradigm.StageBudgets{
			Calibrate: budget, Allocate: budget, Schedule: budget, Codegen: budget, Execute: budget,
		},
		breaker: paradigm.NewBreaker(paradigm.BreakerOptions{}),
		reg:     reg,
		// The canonical fold contributes the deterministic counters
		// (alloc_cache_*, alloc_solve_*); the latency observer adds the
		// wall-clock per-backend solve histograms, which only a service —
		// not the deterministic library fold — is allowed to record.
		obs: paradigm.MultiObserver(paradigm.NewMetricsObserver(reg), allocLatencyObserver{reg}),
		// One shared warm-start cache across jobs: resubmitting the same
		// program/size/procs replays the allocation instantly, and a new
		// procs for a known program warm-starts the solve.
		allocCache: paradigm.NewAllocCache(128),
		jobs:       map[string]*job{},
		queue:      make(chan *job, queue),
		drainCh:    make(chan struct{}),
	}
}

// allocLatencyObserver records wall-clock allocation solve latency per
// backend into the service registry ("paradigmd_alloc_seconds_<backend>").
// Wall time is nondeterministic by nature, so it lives here — the shared
// event fold deliberately ignores AllocDone.Seconds.
type allocLatencyObserver struct{ reg *paradigm.Metrics }

// solveLatencyBuckets cover µs-scale cache replays through multi-second
// solves.
var solveLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

func (l allocLatencyObserver) Observe(e paradigm.Event) {
	if done, ok := e.(paradigm.AllocDoneEvent); ok {
		l.reg.Histogram("paradigmd_alloc_seconds_"+done.Backend, solveLatencyBuckets).Observe(done.Seconds)
	}
}

func (s *server) start(workers int) {
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// drain stops admission, lets the workers finish every accepted job,
// and returns when the queue is empty.
func (s *server) drain() {
	if s.draining.CompareAndSwap(false, true) {
		close(s.drainCh)
	}
	s.wg.Wait()
}

func (s *server) completed() uint64 { return s.done.Load() }

func (s *server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.runJob(j)
		case <-s.drainCh:
			// Draining: finish whatever was accepted, then exit.
			for {
				select {
				case j := <-s.queue:
					s.runJob(j)
				default:
					return
				}
			}
		}
	}
}

func (s *server) runJob(j *job) {
	s.mu.Lock()
	j.Status = "running"
	s.mu.Unlock()

	res, p, err := s.execute(j.req, j.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		j.Status = "failed"
		j.Error = err.Error()
		s.reg.Counter("paradigmd_jobs_failed_total").Inc()
	} else {
		j.Status = "done"
		j.res, j.p = res, p
		j.Phi, j.Actual = res.Alloc.Phi, res.Actual
		s.reg.Counter("paradigmd_jobs_completed_total").Inc()
	}
	s.done.Add(1)
}

// execute runs one job through the full governed pipeline. Panic
// containment lives in the library: a malformed job comes back as a
// typed error, never as a worker crash.
func (s *server) execute(req jobRequest, id string) (*paradigm.Result, *paradigm.Program, error) {
	var (
		p   *paradigm.Program
		err error
	)
	switch req.Program {
	case "cmm":
		p, err = paradigm.ComplexMatMul(req.Size, s.mach.src)
	case "strassen":
		p, err = paradigm.Strassen(req.Size, s.mach.src)
	default:
		return nil, nil, fmt.Errorf("unknown program %q (want cmm or strassen)", req.Program)
	}
	if err != nil {
		return nil, nil, err
	}
	opts := []paradigm.Option{
		paradigm.WithObserver(s.obs),
		paradigm.WithAllocOptions(paradigm.AllocOptions{Cache: s.allocCache}),
		paradigm.WithStageBudgets(s.budgets),
		paradigm.WithBreaker(s.breaker),
		paradigm.WithRetry(paradigm.RetryPolicy{MaxAttempts: 2}),
	}
	if s.mach.backend != nil {
		opts = append(opts, paradigm.WithMachine(s.mach.backend))
	}
	if req.Recover > 0 {
		opts = append(opts, paradigm.WithRecovery(req.Recover))
	}
	if s.ckptDir != "" {
		cp, err := paradigm.OpenCheckpoint(filepath.Join(s.ckptDir, "job-"+id+".wal"))
		if err != nil {
			return nil, nil, err
		}
		defer cp.Close()
		opts = append(opts, paradigm.WithCheckpoint(cp))
	}
	res, err := paradigm.RunContext(context.Background(), p, s.mach.profile(req.Procs), s.mach.cal, req.Procs, opts...)
	if err != nil {
		return nil, nil, err
	}
	return res, p, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, s.reg.Snapshot().Text())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok\n")
	})
	return mux
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		s.mu.Lock()
		views := make([]jobView, 0, len(s.order))
		for _, id := range s.order {
			views = append(views, s.jobs[id].jobView)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, views)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reg.Counter("paradigmd_jobs_rejected_total").Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	var req jobRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Size <= 0 || req.Procs <= 0 {
		http.Error(w, "size and procs must be positive", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.next++
	j := &job{req: req, jobView: jobView{
		ID: fmt.Sprintf("%d", s.next), Program: req.Program,
		Size: req.Size, Procs: req.Procs, Status: "queued",
	}}
	// The enqueue attempt is non-blocking, so it can stay under the
	// lock: a job is registered if and only if it was admitted.
	select {
	case s.queue <- j:
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		s.mu.Unlock()
		s.reg.Counter("paradigmd_jobs_submitted_total").Inc()
		writeJSON(w, http.StatusAccepted, map[string]string{"id": j.ID})
	default:
		// Load shed: the bounded queue is full.
		s.mu.Unlock()
		s.reg.Counter("paradigmd_jobs_rejected_total").Inc()
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	switch sub {
	case "":
		s.mu.Lock()
		view := j.jobView
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
	case "schedule":
		s.mu.Lock()
		res, p, status := j.res, j.p, j.Status
		s.mu.Unlock()
		if res == nil {
			http.Error(w, "job not finished: "+status, http.StatusConflict)
			return
		}
		io.WriteString(w, res.Sched.Table(p.G))
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// smokeCycle drives two identical jobs through a live server over real
// HTTP: the self-contained CI gate that the service starts, schedules,
// answers, memoizes the repeated allocation in the warm-start cache, and
// drains.
func smokeCycle(addr, machInfo string) error {
	base := "http://" + addr
	id1, err := smokeSubmitAndWait(base)
	if err != nil {
		return err
	}
	// The identical resubmission must replay the allocate stage from the
	// warm-start cache.
	if _, err := smokeSubmitAndWait(base); err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}

	resp, err := http.Get(base + "/jobs/" + id1 + "/schedule")
	if err != nil {
		return err
	}
	sched, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(sched) == 0 {
		return fmt.Errorf("schedule fetch: %s", resp.Status)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"paradigmd_jobs_completed_total 2",
		"alloc_cache_miss_total 1",
		"alloc_cache_hit_total 1",
		"paradigmd_alloc_seconds_cache",
		machInfo,
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	return nil
}

func smokeSubmitAndWait(base string) (string, error) {
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"program":"cmm","size":16,"procs":4}`))
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		return "", err
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return "", errors.New("job did not finish within 60s")
		}
		resp, err := http.Get(base + "/jobs/" + accepted.ID)
		if err != nil {
			return "", err
		}
		var view jobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if view.Status == "failed" {
			return "", fmt.Errorf("job failed: %s", view.Error)
		}
		if view.Status == "done" {
			if view.Actual <= 0 {
				return "", fmt.Errorf("done job reports non-positive makespan %v", view.Actual)
			}
			return accepted.ID, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}
