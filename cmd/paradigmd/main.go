// Command paradigmd is a long-running, multi-tenant scheduling service
// over the PARADIGM pipeline: submit an allocation-and-scheduling job,
// poll its status, fetch the resulting schedule, and scrape the
// pipeline's metrics registry — with the crash-safety surface of the
// library wired through (per-job write-ahead checkpoints, per-stage
// budgets, a shared circuit breaker around the convex solve, and panic
// containment at every boundary).
//
// With a -checkpoint-dir the service itself is crash-safe: every
// accepted submit and every status transition is committed to a durable
// tenant-sharded job journal (jobs-shard-NNN.journal files, same
// CRC/commit-pointer discipline as the per-job WALs) before it is
// acknowledged. On restart every shard is replayed: finished jobs are
// reloaded with their result digests, unfinished ones are re-enqueued
// and resume from their committed per-job WAL stages, and a corrupt
// shard is refused with a typed error rather than silently dropping
// accepted work. Completed jobs' WALs are garbage-collected on
// committed completion (-wal-retain keeps failed jobs' WALs for
// postmortem by default).
//
// Multi-tenancy (DESIGN.md §15): jobs carry a tenant name, admission is
// governed by a strict JSON policy config (-policy) declaring SLO
// classes, per-tenant token buckets, and the queue discipline (fcfs,
// priority-fcfs, or sjf by predicted Φ). A tenant over its bucket is
// refused with 429 while other tenants proceed. Identical concurrent
// submissions from one tenant coalesce onto a single in-flight solve —
// every acknowledged job is journaled and reaches the same
// digest-verified result — and a pipeline-level schedule cache replays
// repeated allocate→schedule plans byte-identically without solving.
// /metrics reports per-tenant admission/queue/completion series and the
// Jain fairness index over completed jobs.
//
// Endpoints:
//
//	POST /jobs               {"program":"cmm","size":32,"procs":8}  -> 202 {"id":...}
//	                         optional: "tenant", "recover", "retries", "fault_seed"
//	GET  /jobs               job summaries, submission order (X-Tenant scopes)
//	GET  /jobs/{id}          one job's status, result summary, digest
//	GET  /jobs/{id}/schedule the finished schedule (text table)
//	GET  /metrics            metrics registry, deterministic text form
//	GET  /healthz            JSON health: ok (200) | degraded (200) | draining (503)
//	                         with queue depth, journal lag, breaker state
//
// Admission control: per-tenant token buckets shed over-rate tenants
// with 429; the submit queue is bounded and a full queue sheds load
// with 429; an oversized body is refused with 413; a draining server
// refuses with 503. SIGTERM/SIGINT starts a graceful drain — accepted
// jobs finish, new ones are refused, then the listener shuts down.
//
//	paradigmd -addr :8080 -workers 2 -queue 16 -checkpoint-dir /var/lib/paradigm -policy policy.json
//	paradigmd -smoke   # self-contained start/submit/poll/drain cycle
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"paradigm"
	"paradigm/internal/admission"
	"paradigm/internal/cluster"
	"paradigm/internal/jobstore"
)

// Submit-path limits and WAL retention policies.
const (
	// maxSubmitBytes bounds the submit body; larger requests are refused
	// with 413 instead of silently truncated into JSON decode errors.
	maxSubmitBytes = 1 << 16
	// maxRetryBudget caps a job's requested allocation retry budget.
	maxRetryBudget = 8

	retainAll    = "all"
	retainFailed = "failed"
	retainNone   = "none"

	// defaultTenant scopes jobs submitted without a tenant name.
	defaultTenant = "default"
)

func main() {
	var o runOpts
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.IntVar(&o.workers, "workers", 2, "concurrent pipeline workers")
	flag.IntVar(&o.queueCap, "queue", 16, "bounded submit queue size (full: 429)")
	flag.StringVar(&o.ckptDir, "checkpoint-dir", "", "directory for the durable job journals and per-job write-ahead checkpoint logs (empty: no durability)")
	flag.StringVar(&o.machine, "machine", "cm5", "machine: a builtin name (cm5, paragon, cm5-hetero8, paragon-memcap8) or a path to a machine-spec JSON file")
	flag.DurationVar(&o.budget, "stage-budget", 0, "per-stage deadline applied to every pipeline stage (0: unbounded)")
	flag.StringVar(&o.walRetain, "wal-retain", retainFailed, "per-job WALs kept after a terminal state: all, failed (postmortem default), or none")
	flag.IntVar(&o.retries, "retries", 2, "default per-job allocation retry budget (a job's retries field overrides, capped at 8)")
	flag.StringVar(&o.policyPath, "policy", "", "admission policy config JSON (tenants, SLO classes, queue discipline; empty: unlimited FCFS)")
	flag.IntVar(&o.shards, "journal-shards", 4, "tenant-sharded job journal count (existing shards are always adopted)")
	flag.IntVar(&o.schedCacheCap, "sched-cache", 256, "pipeline-level schedule cache capacity in entries (0: disabled)")
	flag.IntVar(&o.clusterProcs, "cluster-procs", 0, "cluster mode: run jobs on partitions of one shared processor pool of this size (0: off)")
	flag.StringVar(&o.router, "router", "round-robin", "cluster mode partition router: round-robin, least-loaded, or best-fit")
	flag.IntVar(&o.clusterFaults, "cluster-faults", 0, "cluster mode: kill one partition processor on every Nth placement; the job recovers onto survivors and the processor retires from the pool (0: none)")
	flag.BoolVar(&o.smoke, "smoke", false, "start, run one job end to end, drain, and exit (CI smoke mode)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "paradigmd:", err)
		os.Exit(1)
	}
}

// runOpts is the service's resolved command line.
type runOpts struct {
	addr, machine, ckptDir    string
	policyPath, walRetain     string
	workers, queueCap, shards int
	schedCacheCap             int
	budget                    time.Duration
	retries                   int
	clusterProcs              int
	router                    string
	clusterFaults             int
	smoke                     bool
}

func run(o runOpts) error {
	if o.workers < 1 || o.queueCap < 1 {
		return fmt.Errorf("need at least one worker and a positive queue size")
	}
	switch o.walRetain {
	case retainAll, retainFailed, retainNone:
	default:
		return fmt.Errorf("-wal-retain %q: want all, failed, or none", o.walRetain)
	}
	var policy admission.Config
	if o.policyPath != "" {
		data, err := os.ReadFile(o.policyPath)
		if err != nil {
			return fmt.Errorf("-policy %s: %w", o.policyPath, err)
		}
		if policy, err = admission.Decode(data); err != nil {
			return fmt.Errorf("-policy %s: %w", o.policyPath, err)
		}
	}
	machine := o.machine
	// Machine resolution: the two classic profiles keep the historical
	// trained (training-sets) path; any other builtin name or spec file
	// loads through the machine database as a file backend.
	var (
		mach    machineModel
		profile = paradigm.NewCM5
	)
	switch machine {
	case "cm5", "paragon":
		if machine == "paragon" {
			profile = paradigm.NewParagon
		}
		cal, err := paradigm.Calibrate(profile(64))
		if err != nil {
			return err
		}
		mach = machineModel{
			src: cal, cal: cal, profile: profile,
			name: profile(64).Name, kind: paradigm.MachineTrained,
		}
	default:
		mb, err := paradigm.ResolveMachine(machine)
		if err != nil {
			return err
		}
		mach = machineModel{
			src: mb, backend: mb,
			profile: func(p int) paradigm.Machine { return mb.SimParams().WithProcs(p) },
			name:    mb.Name(), kind: mb.Kind(),
		}
	}
	// The flag exposes "0: disabled"; internally 0 means "default" and a
	// negative capacity disables.
	schedCap := o.schedCacheCap
	if schedCap <= 0 {
		schedCap = -1
	}
	srv, err := newServer(mach, serverConfig{
		ckptDir: o.ckptDir, queueCap: o.queueCap, shards: o.shards,
		budget: o.budget, walRetain: o.walRetain, retries: o.retries,
		policy: policy, schedCacheCap: schedCap,
		cluster: clusterConfig{procs: o.clusterProcs, router: o.router, faultEvery: o.clusterFaults},
	})
	if err != nil {
		return err
	}
	if srv.pool != nil {
		log.Printf("cluster mode: %d-processor pool, %s router, fault every %d placements",
			o.clusterProcs, o.router, o.clusterFaults)
	}
	srv.start(o.workers)

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("paradigmd listening on %s (%d workers, queue %d, %d jobs recovered)",
		ln.Addr(), o.workers, srv.queueCap, srv.backlog.Load())

	if o.smoke {
		machInfo := fmt.Sprintf("paradigmd_machine_info{name=%q,kind=%q} 1", mach.name, mach.kind)
		if err := smokeCycle(ln.Addr().String(), machInfo); err != nil {
			return fmt.Errorf("smoke: %w", err)
		}
		srv.drain()
		shutdownHTTP(hs)
		<-serveErr
		fmt.Println("smoke ok: submitted, completed, fetched schedule and metrics, drained")
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("received %v: draining", s)
		srv.drain()
		shutdownHTTP(hs)
		<-serveErr
		log.Printf("drained %d jobs, exiting", srv.completed())
		return nil
	case err := <-serveErr:
		return err
	}
}

func shutdownHTTP(hs *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
}

// jobRequest is the submit payload.
type jobRequest struct {
	Program   string `json:"program"`              // cmm | strassen
	Size      int    `json:"size"`                 // matrix size
	Procs     int    `json:"procs"`                // system size p
	Tenant    string `json:"tenant,omitempty"`     // tenant scope (empty: "default")
	Recover   int    `json:"recover,omitempty"`    // max recovery attempts
	Retries   int    `json:"retries,omitempty"`    // per-job alloc retry budget (0: server default)
	FaultSeed uint64 `json:"fault_seed,omitempty"` // deterministic fault schedule seed (0: none)
}

// specKey canonicalizes everything that determines the job's result,
// excluding the tenant: two jobs with equal spec keys produce
// byte-identical digests (the pipeline is deterministic).
func (r jobRequest) specKey() string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d", r.Program, r.Size, r.Procs, r.Recover, r.Retries, r.FaultSeed)
}

// jobView is the status representation returned by the API.
type jobView struct {
	ID      string  `json:"id"`
	Program string  `json:"program"`
	Size    int     `json:"size"`
	Procs   int     `json:"procs"`
	Tenant  string  `json:"tenant,omitempty"`
	Class   string  `json:"class,omitempty"`
	Status  string  `json:"status"` // queued | running | done | failed
	Error   string  `json:"error,omitempty"`
	Phi     float64 `json:"phi,omitempty"`
	Actual  float64 `json:"actual,omitempty"`
	// Digest fingerprints the deterministic result content; it survives
	// restarts through the job journal.
	Digest string `json:"digest,omitempty"`
	// Coalesced marks a job that joined another job's in-flight solve
	// instead of solving itself; its digest is the leader's.
	Coalesced bool `json:"coalesced,omitempty"`
	// Granted is the partition size the cluster pool actually granted
	// (cluster mode only); Degraded marks a grant shrunk below the
	// request because live capacity had dropped.
	Granted  int  `json:"granted,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
}

// healthView is the /healthz body.
type healthView struct {
	State            string `json:"state"` // ok | degraded | draining
	QueueDepth       int    `json:"queue_depth"`
	QueueCap         int    `json:"queue_cap"`
	JournalLag       int    `json:"journal_lag"`
	Breaker          string `json:"breaker"`
	RecoveredPending int    `json:"recovered_pending"`
}

type job struct {
	jobView
	req jobRequest
	res *paradigm.Result
	p   *paradigm.Program
	// recovered marks a job re-enqueued from the journal at boot; the
	// service reports degraded until this backlog clears.
	recovered bool
	// followers are same-tenant jobs coalesced onto this in-flight job;
	// they receive this job's result when it completes (under s.mu).
	followers []*job
}

// tenantState is one tenant's admission and accounting state (bucket is
// internally locked; counters are guarded by s.mu).
type tenantState struct {
	name     string
	class    string
	priority int
	bucket   *admission.Bucket
	// queued counts this tenant's jobs not yet terminal (queue depth
	// including coalesced followers); completed/rejected feed the
	// fairness and admission series.
	queued    int
	completed uint64
	rejected  uint64
}

// machineModel bundles the service's resolved machine: a loop-pricing
// source for the program builders, either a calibration (trained path)
// or a backend (everything else) for the pipeline, and the label the
// /metrics endpoint reports.
type machineModel struct {
	src     paradigm.LoopSource
	cal     *paradigm.Calibration   // trained path only
	backend paradigm.MachineBackend // file/analytical path only
	profile func(int) paradigm.Machine
	name    string
	kind    paradigm.MachineKind
}

// serverConfig bundles the server's construction knobs.
type serverConfig struct {
	ckptDir       string
	queueCap      int
	shards        int // journal shards (0: 4)
	budget        time.Duration
	walRetain     string
	retries       int
	policy        admission.Config
	schedCacheCap int           // schedule-cache entries (0: 256; < 0: disabled)
	cluster       clusterConfig // cluster mode (procs 0: off)
}

type server struct {
	mach       machineModel
	ckptDir    string
	walRetain  string
	retries    int
	budgets    paradigm.StageBudgets
	breaker    *paradigm.Breaker
	reg        *paradigm.Metrics
	obs        paradigm.Observer
	allocCache *paradigm.AllocCache
	schedCache *paradigm.ScheduleCache
	journal    *jobstore.Sharded
	policy     admission.Config
	// pool is the shared wall-clock processor pool; non-nil iff the
	// service runs in cluster mode.
	pool *clusterPool

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	next    int
	tenants map[string]*tenantState
	// inflight maps tenant+specKey to the queued-or-running job later
	// identical submits coalesce onto.
	inflight map[string]*job
	// phiBySpec caches each spec's last solved Φ for SJF ordering.
	phiBySpec map[string]float64

	queue    *admission.Queue
	queueCap int
	draining atomic.Bool
	wg       sync.WaitGroup
	done     atomic.Uint64
	// backlog counts boot-recovered jobs not yet terminal.
	backlog atomic.Int64
}

func newServer(mach machineModel, cfg serverConfig) (*server, error) {
	reg := paradigm.NewMetrics()
	// An info-style gauge surfaces the resolved machine on /metrics.
	reg.Gauge(fmt.Sprintf("paradigmd_machine_info{name=%q,kind=%q}", mach.name, mach.kind)).Set(1)
	if err := cfg.policy.Validate(); err != nil {
		return nil, err
	}
	queuePol, err := admission.ParsePolicy(cfg.policy.QueuePolicy)
	if err != nil {
		return nil, err
	}
	if cfg.shards <= 0 {
		cfg.shards = 4
	}
	if cfg.schedCacheCap == 0 {
		cfg.schedCacheCap = 256
	}
	s := &server{
		mach:      mach,
		ckptDir:   cfg.ckptDir,
		walRetain: cfg.walRetain,
		retries:   cfg.retries,
		budgets: paradigm.StageBudgets{
			Calibrate: cfg.budget, Allocate: cfg.budget, Schedule: cfg.budget, Codegen: cfg.budget, Execute: cfg.budget,
		},
		breaker: paradigm.NewBreaker(paradigm.BreakerOptions{}),
		reg:     reg,
		policy:  cfg.policy,
		// One shared warm-start cache across jobs: resubmitting the same
		// program/size/procs replays the allocation instantly, and a new
		// procs for a known program warm-starts the solve.
		allocCache: paradigm.NewAllocCache(128),
		jobs:       map[string]*job{},
		tenants:    map[string]*tenantState{},
		inflight:   map[string]*job{},
		phiBySpec:  map[string]float64{},
	}
	if cfg.schedCacheCap > 0 {
		// The pipeline-level schedule cache memoizes whole
		// allocate→schedule plans across jobs; exact-only replay keeps
		// journaled digests pure functions of the spec.
		s.schedCache = paradigm.NewScheduleCache(cfg.schedCacheCap, 8)
	}
	if cfg.cluster.enabled() {
		pool, err := newClusterPool(cfg.cluster, reg)
		if err != nil {
			return nil, err
		}
		s.pool = pool
	}
	// The canonical fold contributes the deterministic counters
	// (alloc_cache_*, sched_cache_*, job_journal_*); the latency observer
	// adds the wall-clock per-backend solve histograms, which only a
	// service — not the deterministic library fold — is allowed to record.
	s.obs = paradigm.MultiObserver(paradigm.NewMetricsObserver(reg), allocLatencyObserver{reg})

	// Restart recovery: replay every shard of the durable job store,
	// reload finished jobs, and re-enqueue unfinished ones so they resume
	// from their committed per-job WAL stages. A corrupt shard refuses
	// boot.
	var pending []*job
	queueCap := cfg.queueCap
	if cfg.ckptDir != "" {
		journal, states, err := jobstore.OpenSharded(cfg.ckptDir, cfg.shards, s.obs)
		if err != nil {
			return nil, err
		}
		s.journal = journal
		pending = s.reloadJournal(states)
		if len(pending) > queueCap {
			// The recovered backlog must be admissible regardless of the
			// configured bound; new submits still shed at the larger cap.
			queueCap = len(pending)
		}
	}
	s.queue = admission.NewQueue(queuePol, queueCap)
	s.queueCap = queueCap
	for _, j := range pending {
		if !s.queue.Push(s.queueItem(j)) {
			return nil, fmt.Errorf("recovered job %s did not fit the boot queue", j.ID)
		}
		s.backlog.Add(1)
		// Journal the re-queue so the journal reflects every transition,
		// restarts included. At boot an append failure is fatal: the
		// service must not accept work it cannot journal.
		if err := s.journal.AppendState(jobstore.State{ID: j.ID, Status: jobstore.StatusQueued}); err != nil {
			return nil, err
		}
	}
	s.updateLag()
	return s, nil
}

// queueItem wraps a job for the admission queue with its class priority
// and predicted Φ (SJF ordering).
func (s *server) queueItem(j *job) admission.Item {
	return admission.Item{Payload: j, Priority: s.tenantFor(j.Tenant).priority, Phi: s.predictPhi(j.req)}
}

// tenantFor lazily materializes a tenant's admission state from the
// policy. Callers may hold s.mu; tenantFor takes no locks itself beyond
// the map (which s.mu guards) — boot and submit both reach it with the
// lock held or single-threaded.
func (s *server) tenantFor(name string) *tenantState {
	if name == "" {
		name = defaultTenant
	}
	if ts, ok := s.tenants[name]; ok {
		return ts
	}
	contract := s.policy.TenantContract(name)
	ts := &tenantState{
		name:     name,
		class:    contract.Class,
		priority: s.policy.PriorityOf(contract),
		bucket:   admission.NewBucket(contract.Rate, contract.Burst, nil),
	}
	s.tenants[name] = ts
	return ts
}

// predictPhi estimates a job's Φ for SJF ordering: the last solved Φ of
// the identical spec when known, else a work-scaling proxy (n³ flops
// spread over p processors; Strassen's seven-multiply recursion is
// cheaper than the classic eight).
func (s *server) predictPhi(req jobRequest) float64 {
	if phi, ok := s.phiBySpec[req.specKey()]; ok {
		return phi
	}
	n := float64(req.Size)
	mult := 1.0
	if req.Program == "strassen" {
		mult = 7.0 / 8
	}
	return mult * n * n * n / float64(req.Procs)
}

// reloadJournal registers every journaled job: terminal jobs are
// reloaded with their journaled outcome (and their WALs GC'd per the
// retention policy), open jobs are returned for re-enqueueing. The id
// counter resumes past the highest journaled id.
func (s *server) reloadJournal(states []jobstore.JobState) []*job {
	var pending []*job
	maxID := 0
	for _, st := range states {
		j := &job{
			req: jobRequest{
				Program: st.Program, Size: st.Size, Procs: st.Procs, Tenant: st.Tenant,
				Recover: st.Recover, Retries: st.Retries, FaultSeed: st.FaultSeed,
			},
			jobView: jobView{
				ID: st.ID, Program: st.Program, Size: st.Size, Procs: st.Procs,
				Tenant: st.Tenant, Class: st.Class,
			},
		}
		if j.Tenant == "" {
			// Pre-tenancy journal records scope to the default tenant.
			j.Tenant = defaultTenant
		}
		ts := s.tenantFor(j.Tenant)
		if id, err := strconv.Atoi(st.ID); err == nil && id > maxID {
			maxID = id
		}
		switch st.Status {
		case jobstore.StatusDone:
			j.Status = "done"
			j.Phi, j.Actual, j.Digest = st.Phi, st.Actual, st.Digest
			ts.completed++
			s.reg.Counter("paradigmd_jobs_reloaded_total").Inc()
			// A crash between the journaled completion and the WAL GC
			// leaves an orphan WAL; collect it now.
			s.gcWAL(st.ID, true)
		case jobstore.StatusFailed:
			j.Status = "failed"
			j.Error = st.Error
			s.reg.Counter("paradigmd_jobs_reloaded_total").Inc()
			s.gcWAL(st.ID, false)
		default:
			j.Status = "queued"
			j.recovered = true
			ts.queued++
			pending = append(pending, j)
			s.reg.Counter("paradigmd_jobs_recovered_total").Inc()
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
	}
	s.next = maxID
	return pending
}

// allocLatencyObserver records wall-clock allocation solve latency per
// backend into the service registry ("paradigmd_alloc_seconds_<backend>").
// Wall time is nondeterministic by nature, so it lives here — the shared
// event fold deliberately ignores AllocDone.Seconds.
type allocLatencyObserver struct{ reg *paradigm.Metrics }

// solveLatencyBuckets cover µs-scale cache replays through multi-second
// solves.
var solveLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

func (l allocLatencyObserver) Observe(e paradigm.Event) {
	if done, ok := e.(paradigm.AllocDoneEvent); ok {
		// Backend labels like "sched-cache" must be sanitized into metric
		// names the registry's identifier grammar accepts.
		name := strings.ReplaceAll("paradigmd_alloc_seconds_"+done.Backend, "-", "_")
		l.reg.Histogram(name, solveLatencyBuckets).Observe(done.Seconds)
	}
}

func (s *server) start(workers int) {
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// drain stops admission, lets the workers finish every accepted job,
// and returns when the queue is empty. The draining flag flips under
// the submit lock, so a racing submit either sees it (503) or has
// already pushed — Close only refuses later pushes and releases the
// workers once the backlog drains — and the post-wait sweep runs
// anything the exiting workers left behind, so an accepted job is
// never silently dropped.
func (s *server) drain() {
	s.mu.Lock()
	first := s.draining.CompareAndSwap(false, true)
	s.mu.Unlock()
	if first {
		s.queue.Close()
	}
	s.wg.Wait()
	for {
		it, ok := s.queue.TryPop()
		if !ok {
			return
		}
		s.runJob(it.Payload.(*job))
	}
}

func (s *server) completed() uint64 { return s.done.Load() }

func (s *server) worker() {
	defer s.wg.Done()
	for {
		it, ok := s.queue.Pop()
		if !ok {
			// Closed and drained.
			return
		}
		s.runJob(it.Payload.(*job))
	}
}

// journalState appends one status transition to the job journal. At
// runtime an append failure degrades durability but must not fail a job
// whose result is already correct: it is logged and counted instead.
func (s *server) journalState(st jobstore.State) {
	if s.journal == nil {
		return
	}
	if err := s.journal.AppendState(st); err != nil {
		log.Printf("journal: %v", err)
		s.reg.Counter("paradigmd_journal_errors_total").Inc()
	}
	s.updateLag()
}

// updateLag publishes the journal backlog gauge.
func (s *server) updateLag() {
	if s.journal != nil {
		s.reg.Gauge("paradigmd_journal_lag").Set(float64(s.journal.Lag()))
	}
}

// gcWAL applies the retention policy to a terminal job's WAL: completed
// jobs' WALs are deleted once the completion is journaled (fixing the
// unbounded per-job WAL leak), failed jobs' WALs are kept for
// postmortem under the default policy.
func (s *server) gcWAL(id string, success bool) {
	if s.ckptDir == "" || s.walRetain == retainAll || (!success && s.walRetain != retainNone) {
		return
	}
	path := filepath.Join(s.ckptDir, "job-"+id+".wal")
	if err := os.Remove(path); err == nil {
		s.reg.Counter("paradigmd_wal_gc_total").Inc()
	} else if !os.IsNotExist(err) {
		log.Printf("wal-gc %s: %v", path, err)
	}
}

// inflightKey scopes coalescing: only same-tenant, identical-spec
// submits may share a solve, so one tenant's result is never handed to
// another tenant's job.
func inflightKey(tenant string, req jobRequest) string {
	return tenant + "|" + req.specKey()
}

func (s *server) runJob(j *job) {
	s.mu.Lock()
	j.Status = "running"
	s.mu.Unlock()
	s.journalState(jobstore.State{ID: j.ID, Status: jobstore.StatusRunning})

	res, p, pl, err := s.execute(j.req, j.ID)
	s.mu.Lock()
	j.Granted, j.Degraded = pl.granted, pl.degraded
	var st jobstore.State
	if err != nil {
		j.Status = "failed"
		j.Error = err.Error()
		st = jobstore.State{ID: j.ID, Status: jobstore.StatusFailed, Error: j.Error}
		s.reg.Counter("paradigmd_jobs_failed_total").Inc()
	} else {
		j.Status = "done"
		j.res, j.p = res, p
		j.Phi, j.Actual = res.Alloc.Phi, res.Actual
		j.Digest = res.Digest()
		st = jobstore.State{ID: j.ID, Status: jobstore.StatusDone, Phi: j.Phi, Actual: j.Actual, Digest: j.Digest}
		s.reg.Counter("paradigmd_jobs_completed_total").Inc()
		// Remember the solved Φ for SJF ordering of future submits.
		s.phiBySpec[j.req.specKey()] = j.Phi
	}
	// Resolve the coalesced followers under the same lock that set the
	// leader terminal: each acknowledged follower receives the leader's
	// outcome, and the in-flight slot closes so later identical submits
	// start a fresh solve.
	followers := j.followers
	j.followers = nil
	key := inflightKey(j.Tenant, j.req)
	if s.inflight[key] == j {
		delete(s.inflight, key)
	}
	terminal := append([]*job{j}, followers...)
	states := []jobstore.State{st}
	for _, f := range followers {
		f.Status, f.Error = j.Status, j.Error
		f.Phi, f.Actual, f.Digest = j.Phi, j.Actual, j.Digest
		f.res, f.p = j.res, j.p
		fst := st
		fst.ID = f.ID
		states = append(states, fst)
		if err != nil {
			s.reg.Counter("paradigmd_jobs_failed_total").Inc()
		} else {
			s.reg.Counter("paradigmd_jobs_completed_total").Inc()
		}
	}
	for _, t := range terminal {
		ts := s.tenantFor(t.Tenant)
		if ts.queued > 0 {
			ts.queued--
		}
		if err == nil {
			ts.completed++
		}
	}
	recovered := j.recovered
	s.mu.Unlock()
	// The terminal transitions are journaled before the WAL becomes
	// eligible for collection: GC happens on *committed* completion.
	for _, fst := range states {
		s.journalState(fst)
	}
	s.gcWAL(j.ID, err == nil)
	if recovered {
		s.backlog.Add(-1)
	}
	s.done.Add(uint64(len(terminal)))
}

// placement is the cluster-mode outcome of one job's grant: zero-valued
// when the service runs without a pool.
type placement struct {
	granted  int
	degraded bool
	faulted  bool
}

// execute runs one job through the full governed pipeline. Panic
// containment lives in the library: a malformed job comes back as a
// typed error, never as a worker crash. In cluster mode the job first
// acquires a partition from the shared pool (blocking until capacity
// frees, shrinking the grant when live capacity dropped below the
// request) and runs on exactly the processors granted.
func (s *server) execute(req jobRequest, id string) (*paradigm.Result, *paradigm.Program, placement, error) {
	var (
		p   *paradigm.Program
		pl  placement
		err error
	)
	switch req.Program {
	case "cmm":
		p, err = paradigm.ComplexMatMul(req.Size, s.mach.src)
	case "strassen":
		p, err = paradigm.Strassen(req.Size, s.mach.src)
	default:
		return nil, nil, pl, fmt.Errorf("unknown program %q (want cmm or strassen)", req.Program)
	}
	if err != nil {
		return nil, nil, pl, err
	}
	procs := req.Procs
	var g grant
	if s.pool != nil {
		// predictPhi reads state under s.mu; the pool calls it from under
		// its own lock (pool.mu → s.mu only, never the reverse).
		predict := func(k int) float64 {
			kreq := req
			kreq.Procs = k
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.predictPhi(kreq)
		}
		g, err = s.pool.acquire(cluster.Spec{ID: id, Procs: req.Procs, MinProcs: 1}, predict)
		if err != nil {
			return nil, nil, pl, err
		}
		procs = len(g.procs)
		pl = placement{granted: procs, degraded: g.degraded, faulted: g.faultLocal >= 0}
		start := time.Now()
		defer func() { s.pool.release(g, time.Since(start).Seconds()) }()
	}
	// Per-job retry budget: the request field overrides the server
	// default, capped so a hostile submit cannot park a worker.
	attempts := s.retries
	if req.Retries > 0 {
		attempts = req.Retries
	}
	attempts = min(attempts, maxRetryBudget)
	opts := []paradigm.Option{
		paradigm.WithObserver(s.obs),
		// Exact-only: a journaled digest must be reproducible from the
		// job spec alone, so the cache may replay but never seed.
		paradigm.WithAllocOptions(paradigm.AllocOptions{Cache: s.allocCache, CacheExactOnly: true}),
		paradigm.WithStageBudgets(s.budgets),
		paradigm.WithBreaker(s.breaker),
		paradigm.WithRetry(paradigm.RetryPolicy{MaxAttempts: attempts}),
	}
	if s.schedCache != nil {
		// Pipeline-level memoization: a repeated spec replays the whole
		// allocate→schedule plan without touching the solver.
		opts = append(opts, paradigm.WithScheduleCache(s.schedCache))
	}
	if s.mach.backend != nil {
		opts = append(opts, paradigm.WithMachine(s.mach.backend))
	}
	// Fault schedule: a cluster-injected partition death takes precedence
	// over the request's own seeded plan for this run (the two cannot be
	// merged without risking duplicate ProcFail entries on one processor).
	runReq := req
	runReq.Procs = procs
	recoverMax := req.Recover
	switch {
	case pl.faulted:
		plan, perr := s.clusterFaultPlan(runReq, p, g.faultLocal)
		if perr != nil {
			return nil, nil, pl, perr
		}
		opts = append(opts, paradigm.WithFaultPlan(plan))
		if recoverMax < 1 {
			// The death is certain; recovery is not optional.
			recoverMax = 2
		}
	case req.FaultSeed != 0:
		plan, perr := s.faultPlan(runReq, p)
		if perr != nil {
			return nil, nil, pl, perr
		}
		opts = append(opts, paradigm.WithFaultPlan(plan))
	}
	if recoverMax > 0 {
		opts = append(opts, paradigm.WithRecovery(recoverMax))
	}
	if s.ckptDir != "" {
		cp, err := paradigm.OpenCheckpoint(filepath.Join(s.ckptDir, "job-"+id+".wal"))
		if err != nil {
			return nil, nil, pl, err
		}
		defer cp.Close()
		opts = append(opts, paradigm.WithCheckpoint(cp))
	}
	res, err := paradigm.RunContext(context.Background(), p, s.mach.profile(procs), s.mach.cal, procs, opts...)
	if err != nil {
		return nil, nil, pl, err
	}
	return res, p, pl, nil
}

// clusterFaultPlan builds the deterministic partition-death plan for a
// cluster-injected fault: the partition-local processor dies halfway
// through the job's fault-free makespan (a pre-run supplies the hint,
// warm-starting the shared allocation cache so the faulted run replays
// the identical allocation).
func (s *server) clusterFaultPlan(req jobRequest, p *paradigm.Program, local int) (*paradigm.FaultPlan, error) {
	pre := []paradigm.Option{paradigm.WithAllocOptions(paradigm.AllocOptions{Cache: s.allocCache, CacheExactOnly: true})}
	if s.mach.backend != nil {
		pre = append(pre, paradigm.WithMachine(s.mach.backend))
	}
	clean, err := paradigm.RunContext(context.Background(), p, s.mach.profile(req.Procs), s.mach.cal, req.Procs, pre...)
	if err != nil {
		return nil, fmt.Errorf("cluster fault-plan pre-run: %w", err)
	}
	return &paradigm.FaultPlan{ProcFails: []paradigm.ProcFail{{Proc: local, At: clean.Actual / 2}}}, nil
}

// faultPlan derives a job's deterministic fault schedule from its seed:
// a fault-free pre-run (warm-starting the shared allocation cache, so
// the faulted run replays the identical allocation) supplies the
// makespan hint that scales fail times. Jobs that asked for recovery
// lose one processor mid-run; every seeded job sees one delayed
// message.
func (s *server) faultPlan(req jobRequest, p *paradigm.Program) (*paradigm.FaultPlan, error) {
	pre := []paradigm.Option{paradigm.WithAllocOptions(paradigm.AllocOptions{Cache: s.allocCache, CacheExactOnly: true})}
	if s.mach.backend != nil {
		pre = append(pre, paradigm.WithMachine(s.mach.backend))
	}
	clean, err := paradigm.RunContext(context.Background(), p, s.mach.profile(req.Procs), s.mach.cal, req.Procs, pre...)
	if err != nil {
		return nil, fmt.Errorf("fault-plan pre-run: %w", err)
	}
	o := paradigm.FaultRandOptions{Procs: req.Procs, MakespanHint: clean.Actual, MsgDelays: 1}
	if req.Recover > 0 {
		o.ProcFails = 1
	}
	return paradigm.RandomFaultPlan(req.FaultSeed, o)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		s.renderTenantMetrics()
		io.WriteString(w, s.reg.Snapshot().Text())
	})
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleHealthz reports ok, degraded, or draining: degraded while the
// shared breaker is not closed (the solver is being shed to the
// heuristic) or while boot-recovered jobs are still replaying.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	breakerState, _ := s.breaker.Stats()
	backlog := int(s.backlog.Load())
	state, code := "ok", http.StatusOK
	switch {
	case s.draining.Load():
		state, code = "draining", http.StatusServiceUnavailable
	case breakerState != "closed" || backlog > 0:
		state = "degraded"
	}
	lag := 0
	if s.journal != nil {
		lag = s.journal.Lag()
	}
	writeJSON(w, code, healthView{
		State: state, QueueDepth: s.queue.Len(), QueueCap: s.queueCap,
		JournalLag: lag, Breaker: breakerState, RecoveredPending: backlog,
	})
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.submit(w, r)
	case http.MethodGet:
		// An X-Tenant header scopes the listing to one tenant's jobs.
		scope := r.Header.Get("X-Tenant")
		s.mu.Lock()
		views := make([]jobView, 0, len(s.order))
		for _, id := range s.order {
			if v := s.jobs[id].jobView; scope == "" || v.Tenant == scope {
				views = append(views, v)
			}
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, views)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.reg.Counter("paradigmd_jobs_rejected_total").Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// MaxBytesReader turns an oversized body into a typed error (and a
	// clear 413) instead of a truncated payload's JSON decode error.
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reg.Counter("paradigmd_jobs_rejected_total").Inc()
			http.Error(w, fmt.Sprintf("request body exceeds the %d-byte submit limit", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Program == "" {
		http.Error(w, "program is required", http.StatusBadRequest)
		return
	}
	if req.Size <= 0 || req.Procs <= 0 {
		http.Error(w, "size and procs must be positive", http.StatusBadRequest)
		return
	}
	if req.Recover < 0 || req.Retries < 0 {
		http.Error(w, "recover and retries must be non-negative", http.StatusBadRequest)
		return
	}
	if req.Tenant == "" {
		req.Tenant = defaultTenant
	}
	s.mu.Lock()
	// Re-check under the lock: drain() flips the flag while holding it,
	// so a submit past this point is pushed before the queue closes —
	// the drain/submit race cannot drop an accepted job.
	if s.draining.Load() {
		s.mu.Unlock()
		s.reg.Counter("paradigmd_jobs_rejected_total").Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	// Tiered admission: the tenant's token bucket sheds its own
	// over-rate traffic with 429 before the job consumes queue space —
	// other tenants' admission is unaffected.
	ts := s.tenantFor(req.Tenant)
	if !ts.bucket.Allow() {
		ts.rejected++
		s.mu.Unlock()
		s.reg.Counter("paradigmd_jobs_rejected_total").Inc()
		http.Error(w, fmt.Sprintf("tenant %q over admission rate", req.Tenant), http.StatusTooManyRequests)
		return
	}
	// Submit coalescing: an identical same-tenant spec already queued or
	// running gets its own acknowledged-and-journaled job that joins the
	// in-flight solve instead of consuming a queue slot and a worker.
	// Cluster mode disables coalescing: a job's outcome there depends on
	// the pool's state at placement time (granted partition size, fault
	// injection), so identical specs are no longer interchangeable.
	key := inflightKey(req.Tenant, req)
	var leader *job
	if s.pool == nil {
		leader = s.inflight[key]
	}
	// Only submits (under this lock) and boot recovery (before serving)
	// push on the queue, so the capacity check makes the push below
	// infallible: a job is registered iff it was admitted.
	if leader == nil && s.queue.Len() >= s.queueCap {
		ts.rejected++
		s.mu.Unlock()
		s.reg.Counter("paradigmd_jobs_rejected_total").Inc()
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}
	id := strconv.Itoa(s.next + 1)
	// Durability before acknowledgement: the accepted submit is
	// committed to the journal before the job exists anywhere else.
	// Followers are journaled like any job — after a restart they replay
	// independently and re-derive the identical digest.
	if s.journal != nil {
		if err := s.journal.AppendSubmit(jobstore.Submit{
			ID: id, Program: req.Program, Size: req.Size, Procs: req.Procs,
			Recover: req.Recover, Retries: req.Retries, FaultSeed: req.FaultSeed,
			Tenant: req.Tenant, Class: ts.class,
		}); err != nil {
			s.mu.Unlock()
			s.reg.Counter("paradigmd_journal_errors_total").Inc()
			http.Error(w, "journal append failed: "+err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.next++
	j := &job{req: req, jobView: jobView{
		ID: id, Program: req.Program,
		Size: req.Size, Procs: req.Procs, Status: "queued",
		Tenant: req.Tenant, Class: ts.class,
	}}
	s.jobs[id] = j
	s.order = append(s.order, id)
	ts.queued++
	if leader != nil {
		j.Coalesced = true
		leader.followers = append(leader.followers, j)
		s.reg.Counter("paradigmd_jobs_coalesced_total").Inc()
	} else {
		if !s.queue.Push(s.queueItem(j)) {
			// Unreachable by construction (capacity checked above, close
			// implies draining): surface loudly rather than lose the job.
			panic("paradigmd: admitted job refused by queue")
		}
		if s.pool == nil {
			s.inflight[key] = j
		}
	}
	s.mu.Unlock()
	s.updateLag()
	s.reg.Counter("paradigmd_jobs_submitted_total").Inc()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	// An X-Tenant header scopes the lookup: another tenant's job id is
	// indistinguishable from a nonexistent one.
	if !ok || (r.Header.Get("X-Tenant") != "" && j.Tenant != r.Header.Get("X-Tenant")) {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	switch sub {
	case "":
		s.mu.Lock()
		view := j.jobView
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
	case "schedule":
		s.mu.Lock()
		res, p, status := j.res, j.p, j.Status
		s.mu.Unlock()
		if res == nil {
			if status == "done" {
				// Reloaded from the journal: the digest survived the
				// restart, the rendered schedule did not.
				http.Error(w, "schedule not retained across restart; resubmit the job to regenerate it",
					http.StatusGone)
				return
			}
			http.Error(w, "job not finished: "+status, http.StatusConflict)
			return
		}
		io.WriteString(w, res.Sched.Table(p.G))
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

// renderTenantMetrics publishes the per-tenant admission series and the
// Jain fairness index J = (Σx)² / (n·Σx²) over per-tenant completed-job
// counts (1 when every tenant completed equally, →1/n under monopoly,
// 1 when there is nothing to be unfair about yet). Gauges are set at
// scrape time from the authoritative counters under s.mu.
func (s *server) renderTenantMetrics() {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum, sumSq float64
	n := 0
	for _, ts := range s.tenants {
		label := fmt.Sprintf("{tenant=%q}", ts.name)
		s.reg.Gauge("paradigmd_tenant_queue_depth" + label).Set(float64(ts.queued))
		s.reg.Gauge("paradigmd_tenant_completed_total" + label).Set(float64(ts.completed))
		s.reg.Gauge("paradigmd_tenant_rejected_total" + label).Set(float64(ts.rejected))
		x := float64(ts.completed)
		sum += x
		sumSq += x * x
		n++
	}
	jain := 1.0
	if sumSq > 0 {
		jain = sum * sum / (float64(n) * sumSq)
	}
	s.reg.Gauge("paradigmd_tenant_fairness_jain").Set(jain)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// smokeCycle drives two identical jobs through a live server over real
// HTTP: the self-contained CI gate that the service starts, schedules,
// answers, memoizes the repeated plan in the schedule cache, and drains.
func smokeCycle(addr, machInfo string) error {
	base := "http://" + addr
	id1, err := smokeSubmitAndWait(base)
	if err != nil {
		return err
	}
	// The identical resubmission must replay the whole allocate→schedule
	// plan from the pipeline-level schedule cache without re-solving.
	if _, err := smokeSubmitAndWait(base); err != nil {
		return fmt.Errorf("resubmit: %w", err)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return err
	}
	var health healthView
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if health.State != "ok" || health.Breaker != "closed" {
		return fmt.Errorf("healthz = %+v, want ok/closed", health)
	}

	resp, err = http.Get(base + "/jobs/" + id1 + "/schedule")
	if err != nil {
		return err
	}
	sched, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(sched) == 0 {
		return fmt.Errorf("schedule fetch: %s", resp.Status)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"paradigmd_jobs_completed_total 2",
		"alloc_cache_miss_total 1",
		"sched_cache_miss_total 1",
		"sched_cache_hit_total 1",
		"paradigmd_alloc_seconds_sched_cache",
		"paradigmd_tenant_fairness_jain 1",
		machInfo,
	} {
		if !strings.Contains(string(metrics), want) {
			return fmt.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	return nil
}

func smokeSubmitAndWait(base string) (string, error) {
	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"program":"cmm","size":16,"procs":4}`))
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	var accepted struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		return "", err
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return "", errors.New("job did not finish within 60s")
		}
		resp, err := http.Get(base + "/jobs/" + accepted.ID)
		if err != nil {
			return "", err
		}
		var view jobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if view.Status == "failed" {
			return "", fmt.Errorf("job failed: %s", view.Error)
		}
		if view.Status == "done" {
			if view.Actual <= 0 {
				return "", fmt.Errorf("done job reports non-positive makespan %v", view.Actual)
			}
			if view.Digest == "" {
				return "", errors.New("done job reports no result digest")
			}
			return accepted.ID, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
}
