// PR 9 service-level multi-tenancy suite: tiered admission (per-tenant
// token buckets, SLO-class priorities), submit coalescing, the
// pipeline-level schedule cache, X-Tenant scoping, and the tenant
// fairness metrics — plus the golden pin of the /metrics tenant output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"paradigm"
	"paradigm/internal/admission"
)

var updateTenantGolden = flag.Bool("update", false, "rewrite the golden tenant-metrics file under testdata")

// tenantPolicy declares a gold tenant with unlimited admission and a
// free tenant whose bucket starves after one job.
const tenantPolicy = `{
  "queue_policy": "priority-fcfs",
  "classes": {"gold": {"priority": 10}, "free": {"priority": 0}},
  "tenants": {
    "acme": {"class": "gold"},
    "hobby": {"class": "free", "rate": 0.0001, "burst": 1}
  }
}`

// testServerPolicy builds a server under an admission policy.
func testServerPolicy(t *testing.T, dir string, queue, workers int, policyJSON string) (*server, *httptest.Server) {
	t.Helper()
	policy, err := admission.Decode([]byte(policyJSON))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(testMachine(t), serverConfig{
		ckptDir: dir, queueCap: queue, walRetain: retainFailed, retries: 2, policy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.start(workers)
	hs := httptest.NewServer(srv.handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func acceptJob(t *testing.T, base, body string) string {
	t.Helper()
	resp := submitJob(t, base, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s = %s", body, resp.Status)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc.ID
}

func getView(t *testing.T, base, id, tenant string) (jobView, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view jobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return view, resp.StatusCode
}

// TestServiceTenantAdmission is the smoke-paradigmd-tenants gate: two
// tenants, one coalesced pair, one starved bucket shedding 429 while the
// other tenant proceeds, one schedule-cache hit, equal digests
// everywhere, and the fairness/admission series on /metrics.
func TestServiceTenantAdmission(t *testing.T) {
	srv, hs := testServerPolicy(t, t.TempDir(), 8, 0, tenantPolicy)
	const spec = `{"program":"cmm","size":16,"procs":4,"tenant":%q}`

	// Two identical acme submits: the second joins the first in flight.
	id1 := acceptJob(t, hs.URL, fmt.Sprintf(spec, "acme"))
	id2 := acceptJob(t, hs.URL, fmt.Sprintf(spec, "acme"))
	if v, code := getView(t, hs.URL, id2, ""); code != http.StatusOK || !v.Coalesced || v.Class != "gold" {
		t.Fatalf("coalesced view = %d %+v, want gold coalesced", code, v)
	}

	// Hobby's bucket admits one job, then starves — while acme (and the
	// already-accepted hobby job) are unaffected.
	id3 := acceptJob(t, hs.URL, fmt.Sprintf(spec, "hobby"))
	if resp := submitJob(t, hs.URL, fmt.Sprintf(spec, "hobby")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("starved hobby submit = %s, want 429", resp.Status)
	} else {
		resp.Body.Close()
	}

	// X-Tenant scopes both the listing and the single-job lookup: another
	// tenant's job id reads as nonexistent.
	req, _ := http.NewRequest(http.MethodGet, hs.URL+"/jobs", nil)
	req.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var views []jobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 2 {
		t.Fatalf("acme-scoped listing has %d jobs, want 2", len(views))
	}
	if _, code := getView(t, hs.URL, id3, "acme"); code != http.StatusNotFound {
		t.Fatalf("cross-tenant lookup = %d, want 404", code)
	}
	if _, code := getView(t, hs.URL, id3, "hobby"); code != http.StatusOK {
		t.Fatalf("own-tenant lookup = %d, want 200", code)
	}

	// Run everything: the coalesced pair solves exactly once, the hobby
	// job replays the plan from the schedule cache, and all three digests
	// are byte-identical.
	srv.start(1)
	d1 := waitForStatus(t, hs.URL, id1)
	d2 := waitForStatus(t, hs.URL, id2)
	d3 := waitForStatus(t, hs.URL, id3)
	for _, v := range []jobView{d1, d2, d3} {
		if v.Status != "done" || v.Digest == "" {
			t.Fatalf("job = %+v, want done with digest", v)
		}
	}
	if d1.Digest != d2.Digest || d1.Digest != d3.Digest {
		t.Fatalf("digests diverge: %s / %s / %s", d1.Digest, d2.Digest, d3.Digest)
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	rawMetrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(rawMetrics)
	for _, want := range []string{
		"paradigmd_jobs_completed_total 3",
		"paradigmd_jobs_coalesced_total 1",
		// Exactly one solve for three done jobs: one schedule-cache miss
		// (the leader's cold solve), one hit (hobby's replay), and no
		// second allocation.
		"sched_cache_miss_total 1",
		"sched_cache_hit_total 1",
		"alloc_cache_miss_total 1",
		"paradigmd_alloc_seconds_sched_cache",
		`paradigmd_tenant_rejected_total{tenant="hobby"} 1`,
		"paradigmd_tenant_fairness_jain 0.9",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "alloc_cache_hit_total") {
		t.Fatalf("hit the allocation cache — the schedule cache should have bypassed it:\n%s", text)
	}
	srv.drain()
}

// TestServiceCoalesceStress races concurrent identical submissions from
// two tenants against running workers and a drain (run under -race):
// every 202-acknowledged job must reach a terminal state with the
// crash-free reference digest, on the tenant that submitted it, and a
// restart over the same journal must reload every one of them intact.
func TestServiceCoalesceStress(t *testing.T) {
	const stressPolicy = `{
  "classes": {"std": {"priority": 1}},
  "tenants": {"a": {"class": "std"}, "b": {"class": "std"}}
}`
	dir := t.TempDir()
	srv, hs := testServerPolicy(t, dir, 256, 0, stressPolicy)

	// Crash-free reference digest for the one spec everybody submits.
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		t.Fatal(err)
	}
	p, err := paradigm.ComplexMatMul(16, cal)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := paradigm.Run(p, paradigm.NewCM5(4), cal, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := refRes.Digest()

	var (
		mu       sync.Mutex
		accepted = map[string]string{} // id -> tenant
	)
	burst := func(rounds int) {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			tenant := "a"
			if g%2 == 1 {
				tenant = "b"
			}
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				body := fmt.Sprintf(`{"program":"cmm","size":16,"procs":4,"tenant":%q}`, tenant)
				for i := 0; i < rounds; i++ {
					resp := submitJob(t, hs.URL, body)
					if resp.StatusCode == http.StatusAccepted {
						var acc struct{ ID string }
						if err := json.NewDecoder(resp.Body).Decode(&acc); err == nil {
							mu.Lock()
							accepted[acc.ID] = tenant
							mu.Unlock()
						}
					} else if resp.StatusCode != http.StatusServiceUnavailable {
						t.Errorf("racing submit = %s", resp.Status)
					}
					resp.Body.Close()
				}
			}(tenant)
		}
		wg.Wait()
	}

	// Phase 1: no workers, so all but one submit per tenant must
	// coalesce. Phase 2 races more submits against the running workers
	// and the drain.
	burst(3)
	srv.start(2)
	burst(3)
	time.Sleep(time.Millisecond)
	srv.drain()

	srv.mu.Lock()
	coalesced := 0
	for id, tenant := range accepted {
		j, ok := srv.jobs[id]
		if !ok {
			srv.mu.Unlock()
			t.Fatalf("acknowledged job %s not registered", id)
		}
		if j.Status != "done" || j.Digest != ref {
			srv.mu.Unlock()
			t.Fatalf("job %s = %s digest %s, want done with %s", id, j.Status, j.Digest, ref)
		}
		if j.Tenant != tenant {
			srv.mu.Unlock()
			t.Fatalf("job %s leaked across tenants: %q, submitted by %q", id, j.Tenant, tenant)
		}
		if j.Coalesced {
			coalesced++
		}
	}
	registered := len(srv.jobs)
	srv.mu.Unlock()
	if registered != len(accepted) {
		t.Fatalf("registered %d jobs, acknowledged %d", registered, len(accepted))
	}
	// Phase 1 alone guarantees 24 submits onto at most 2 leaders.
	if coalesced < 22 {
		t.Fatalf("only %d jobs coalesced, want >= 22", coalesced)
	}

	// Restart over the same sharded journal: every acknowledged job
	// reloads terminal with its digest.
	srv2, err := newServer(testMachine(t), serverConfig{
		ckptDir: dir, queueCap: 4, walRetain: retainFailed, retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv2.mu.Lock()
	defer srv2.mu.Unlock()
	if len(srv2.jobs) != len(accepted) {
		t.Fatalf("restart reloaded %d jobs, acknowledged %d", len(srv2.jobs), len(accepted))
	}
	for id, tenant := range accepted {
		j, ok := srv2.jobs[id]
		if !ok || j.Status != "done" || j.Digest != ref || j.Tenant != tenant {
			t.Fatalf("restart lost job %s: %+v", id, j)
		}
	}
}

// goldenMetricPrefixes are the deterministic series the golden file
// pins; wall-clock histograms and journal byte counters stay out.
var goldenMetricPrefixes = []string{
	"paradigmd_tenant_", "paradigmd_jobs_", "sched_cache_", "alloc_cache_",
}

// TestMetricsTenantGolden pins the tenant-facing /metrics output —
// fairness index, per-tenant depth/completed/rejected, cache and
// coalesce counters — for a fixed submission sequence. Intentional
// changes are re-blessed with -update.
func TestMetricsTenantGolden(t *testing.T) {
	srv, hs := testServerPolicy(t, "", 8, 0, tenantPolicy)
	const spec = `{"program":"cmm","size":16,"procs":4,"tenant":%q}`
	acceptJob(t, hs.URL, fmt.Sprintf(spec, "acme"))
	acceptJob(t, hs.URL, fmt.Sprintf(spec, "acme")) // coalesces
	acceptJob(t, hs.URL, fmt.Sprintf(spec, "hobby"))
	if resp := submitJob(t, hs.URL, fmt.Sprintf(spec, "hobby")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("starved submit = %s, want 429", resp.Status)
	} else {
		resp.Body.Close()
	}
	// Drain's sweep runs the backlog in priority order on this goroutine:
	// the whole sequence is deterministic.
	srv.drain()
	srv.renderTenantMetrics()

	var b strings.Builder
	for _, line := range strings.Split(srv.reg.Snapshot().Text(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 3 || (fields[0] != "counter" && fields[0] != "gauge") {
			continue
		}
		for _, prefix := range goldenMetricPrefixes {
			if strings.HasPrefix(fields[1], prefix) {
				b.WriteString(line)
				b.WriteByte('\n')
				break
			}
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "metrics_tenants.golden")
	if *updateTenantGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("tenant metrics diverged from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
