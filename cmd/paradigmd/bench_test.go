package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paradigm"
)

// benchSubmit measures the accept path — HTTP POST through admission,
// registration, and the 202 — with zero workers so no job ever runs.
// dir == "" runs without durability; otherwise every accept commits to
// the job journal first, and the delta between the two benchmarks is
// the journal's submit-path overhead (the PR 8 acceptance bound).
func benchSubmit(b *testing.B, dir string) {
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		b.Fatal(err)
	}
	mach := machineModel{
		src: cal, cal: cal, profile: paradigm.NewCM5,
		name: "CM5", kind: paradigm.MachineTrained,
	}
	srv, err := newServer(mach, serverConfig{
		ckptDir: dir, queueCap: b.N + 1, walRetain: retainFailed, retries: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.handler())
	defer hs.Close()
	const body = `{"program":"cmm","size":16,"procs":4}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(hs.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("submit = %s", resp.Status)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func BenchmarkSubmitNoJournal(b *testing.B)   { benchSubmit(b, "") }
func BenchmarkSubmitWithJournal(b *testing.B) { benchSubmit(b, b.TempDir()) }
