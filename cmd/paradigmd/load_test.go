// The PR 9 load harness: a deterministic seeded Poisson/Gamma arrival
// stream (internal/loadgen) drives a live in-process paradigmd over real
// HTTP from two tenants, measuring throughput (jobs/sec) and p99
// submit→terminal latency. The cold wave solves every plan; the warm
// wave replays the same specs through the schedule cache and coalescing,
// so the pair quantifies the multi-tenant fast path. `make bench-pr9`
// folds the two benchmarks into BENCH_PR9.json.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"paradigm"
	"paradigm/internal/admission"
	"paradigm/internal/loadgen"
)

// loadSpecs are the offered job mix; the Gamma weight picks the spec, so
// the mix is deterministic per seed but not uniform.
var loadSpecs = []string{
	`{"program":"cmm","size":16,"procs":4,"tenant":%q}`,
	`{"program":"cmm","size":16,"procs":8,"tenant":%q}`,
	`{"program":"strassen","size":16,"procs":4,"tenant":%q}`,
}

type loadResult struct {
	jobsPerSec float64
	p99        time.Duration
}

// driveLoad offers n jobs to the server on the seeded Poisson schedule
// (rate jobs/second, Gamma(2,1) weights, tenants alternating a/b) and
// waits for every acknowledged job to reach a terminal state. Latency is
// measured per job from its submit acknowledgement to the first poll
// that observes it terminal.
func driveLoad(tb testing.TB, srv *server, base string, n int, seed uint64, rate float64) loadResult {
	tb.Helper()
	arrivals := loadgen.Poisson(seed, n, rate, 2, 1)
	start := time.Now()
	type inflight struct {
		id       string
		accepted time.Time
	}
	jobs := make([]inflight, 0, n)
	for i, a := range arrivals {
		if d := time.Until(start.Add(time.Duration(a.Offset * float64(time.Second)))); d > 0 {
			time.Sleep(d)
		}
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		// The Gamma weight has mean 2; split its mass across the mix.
		spec := loadSpecs[0]
		switch {
		case a.Weight > 3:
			spec = loadSpecs[2]
		case a.Weight > 1.5:
			spec = loadSpecs[1]
		}
		resp, err := http.Post(base+"/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(spec, tenant)))
		if err != nil {
			tb.Fatal(err)
		}
		var acc struct{ ID string }
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			tb.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			tb.Fatalf("load submit %d = %s", i, resp.Status)
		}
		jobs = append(jobs, inflight{id: acc.ID, accepted: time.Now()})
	}

	// Poll in-process for terminal states; every acknowledged job must
	// finish.
	latencies := make([]time.Duration, len(jobs))
	remaining := len(jobs)
	deadline := time.Now().Add(120 * time.Second)
	for remaining > 0 {
		if time.Now().After(deadline) {
			tb.Fatalf("%d load jobs never finished", remaining)
		}
		now := time.Now()
		srv.mu.Lock()
		for i := range jobs {
			if latencies[i] != 0 {
				continue
			}
			j := srv.jobs[jobs[i].id]
			if j.Status == "failed" {
				srv.mu.Unlock()
				tb.Fatalf("load job %s failed: %s", j.ID, j.Error)
			}
			if j.Status == "done" {
				latencies[i] = now.Sub(jobs[i].accepted)
				remaining--
			}
		}
		srv.mu.Unlock()
		if remaining > 0 {
			time.Sleep(time.Millisecond)
		}
	}
	elapsed := time.Since(start)
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	p99 := latencies[(len(latencies)*99+99)/100-1]
	return loadResult{jobsPerSec: float64(len(jobs)) / elapsed.Seconds(), p99: p99}
}

const loadPolicy = `{
  "classes": {"std": {"priority": 1}},
  "tenants": {"a": {"class": "std"}, "b": {"class": "std"}}
}`

func loadServer(tb testing.TB) (*server, *httptest.Server) {
	policy, err := admission.Decode([]byte(loadPolicy))
	if err != nil {
		tb.Fatal(err)
	}
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		tb.Fatal(err)
	}
	mach := machineModel{
		src: cal, cal: cal, profile: paradigm.NewCM5,
		name: "CM5", kind: paradigm.MachineTrained,
	}
	srv, err := newServer(mach, serverConfig{queueCap: 512, retries: 2, walRetain: retainFailed, policy: policy})
	if err != nil {
		tb.Fatal(err)
	}
	srv.start(2)
	hs := httptest.NewServer(srv.handler())
	tb.Cleanup(hs.Close)
	return srv, hs
}

const (
	loadJobs = 40
	loadRate = 400.0 // offered jobs/second
)

// BenchmarkServiceLoadCold measures the seeded arrival wave against a
// fresh server: every distinct plan solves cold.
func BenchmarkServiceLoadCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, hs := loadServer(b)
		b.StartTimer()
		res := driveLoad(b, srv, hs.URL, loadJobs, 9, loadRate)
		b.ReportMetric(res.jobsPerSec, "jobs/s")
		b.ReportMetric(float64(res.p99.Milliseconds()), "p99_ms")
		b.StopTimer()
		srv.drain()
		b.StartTimer()
	}
}

// BenchmarkServiceLoadWarm replays the identical wave against a server
// whose schedule cache the cold wave already filled.
func BenchmarkServiceLoadWarm(b *testing.B) {
	srv, hs := loadServer(b)
	driveLoad(b, srv, hs.URL, loadJobs, 9, loadRate) // warm the caches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := driveLoad(b, srv, hs.URL, loadJobs, 9, loadRate)
		b.ReportMetric(res.jobsPerSec, "jobs/s")
		b.ReportMetric(float64(res.p99.Milliseconds()), "p99_ms")
	}
	b.StopTimer()
	srv.drain()
}

// TestServiceLoadSLO is the correctness face of the harness: the same
// deterministic wave, cold then warm on one server, every acknowledged
// job terminal, and the warm wave inside generous relative SLO bounds of
// the cold one (the schedule cache must not make repeat traffic slower).
func TestServiceLoadSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness skipped in -short")
	}
	srv, hs := loadServer(t)
	cold := driveLoad(t, srv, hs.URL, loadJobs, 9, loadRate)
	warm := driveLoad(t, srv, hs.URL, loadJobs, 9, loadRate)
	t.Logf("cold: %.1f jobs/s p99 %v; warm: %.1f jobs/s p99 %v",
		cold.jobsPerSec, cold.p99, warm.jobsPerSec, warm.p99)

	// Generous bounds: the warm wave replays plans from the schedule
	// cache, so it must not collapse relative to cold. Wall-clock noise
	// on shared CI gets a wide margin.
	if warm.jobsPerSec < cold.jobsPerSec/3 {
		t.Fatalf("warm throughput %.2f jobs/s collapsed vs cold %.2f", warm.jobsPerSec, cold.jobsPerSec)
	}
	if warm.p99 > 3*cold.p99+500*time.Millisecond {
		t.Fatalf("warm p99 %v blew past cold %v", warm.p99, cold.p99)
	}
	srv.drain()
}
