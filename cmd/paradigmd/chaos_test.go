package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"paradigm"
	"paradigm/internal/oracle"
)

// TestParadigmdChaosChild is the re-exec target: a real paradigmd
// process (one worker, durable journal) that serves until killed.
// It is a no-op unless the chaos parent spawned it.
func TestParadigmdChaosChild(t *testing.T) {
	if os.Getenv("PARADIGMD_CHAOS_CHILD") != "1" {
		t.Skip("chaos re-exec target only")
	}
	dir := os.Getenv("PARADIGMD_CHAOS_DIR")
	if err := run(runOpts{
		addr: "127.0.0.1:0", machine: "cm5", ckptDir: dir,
		workers: 1, queueCap: 16, walRetain: retainFailed, retries: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

// startChaosChild re-execs the test binary as a paradigmd subprocess
// over dir and returns its base URL once the listener is up.
func startChaosChild(t *testing.T, dir string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestParadigmdChaosChild$", "-test.v")
	cmd.Env = append(os.Environ(), "PARADIGMD_CHAOS_CHILD=1", "PARADIGMD_CHAOS_DIR="+dir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "paradigmd listening on "); ok {
				if addr, _, ok := strings.Cut(rest, " ("); ok {
					select {
					case addrCh <- addr:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cmd
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("chaos child never announced its listener")
		return "", nil
	}
}

type chaosJob struct {
	Program string
	Size    int
	Procs   int
}

// chaosJobs mixes programs and system sizes (p ∈ {4, 16}), with
// duplicates to exercise the exact-replay cache across the restart and
// enough depth that the SIGKILL always lands with at least four
// acknowledged jobs in flight.
var chaosJobs = []chaosJob{
	{"cmm", 16, 4},
	{"strassen", 16, 4},
	{"cmm", 16, 16},
	{"strassen", 16, 16},
	{"cmm", 32, 4},
	{"cmm", 16, 4},
	{"strassen", 16, 4},
	{"cmm", 32, 4},
	{"cmm", 16, 16},
	{"strassen", 16, 16},
}

// chaosReferenceDigests runs every distinct chaos job crash-free
// through the library, validates each trace with the simulation oracle,
// and returns the digest each service job must reproduce.
func chaosReferenceDigests(t *testing.T) map[chaosJob]string {
	t.Helper()
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		t.Fatal(err)
	}
	refs := map[chaosJob]string{}
	for _, cj := range chaosJobs {
		if _, ok := refs[cj]; ok {
			continue
		}
		var p *paradigm.Program
		switch cj.Program {
		case "cmm":
			p, err = paradigm.ComplexMatMul(cj.Size, cal)
		case "strassen":
			p, err = paradigm.Strassen(cj.Size, cal)
		}
		if err != nil {
			t.Fatal(err)
		}
		tr := &oracle.Trace{}
		res, err := paradigm.RunContext(context.Background(), p, paradigm.NewCM5(cj.Procs), cal, cj.Procs,
			paradigm.WithObserver(tr))
		if err != nil {
			t.Fatal(err)
		}
		if err := oracle.CheckRun(p.G, tr, res.Sim); err != nil {
			t.Fatalf("oracle rejected crash-free %v: %v", cj, err)
		}
		refs[cj] = res.Digest()
	}
	return refs
}

func chaosListJobs(t *testing.T, base string) []jobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []jobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	return views
}

// chaosMetric reads one counter from the registry's text form
// ("counter <name> <value>").
func chaosMetric(t *testing.T, metrics, name string) int {
	t.Helper()
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[1] == name {
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	return 0
}

// TestChaosKillRestart is the service-level crash suite: SIGKILL a
// paradigmd with acknowledged jobs in flight, restart it on the same
// checkpoint directory, and require every acknowledged job to complete
// with a result byte-identical (by digest) to an oracle-validated
// crash-free run — finished jobs reloaded from the journal, unfinished
// ones recovered and resumed from their WALs.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short")
	}
	refs := chaosReferenceDigests(t)
	dir := t.TempDir()

	base, child := startChaosChild(t, dir)
	ids := make(map[string]chaosJob, len(chaosJobs))
	for _, cj := range chaosJobs {
		body := fmt.Sprintf(`{"program":%q,"size":%d,"procs":%d}`, cj.Program, cj.Size, cj.Procs)
		resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %v = %s: %s", cj, resp.Status, raw)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(raw, &acc); err != nil {
			t.Fatal(err)
		}
		ids[acc.ID] = cj
	}

	// Wait for the first completion, then SIGKILL with the rest — at
	// least four acknowledged jobs — still in flight.
	deadline := time.Now().Add(120 * time.Second)
	for {
		views := chaosListJobs(t, base)
		done := 0
		for _, v := range views {
			if v.Status == "done" {
				done++
			}
			if v.Status == "failed" {
				t.Fatalf("chaos job failed before the kill: %+v", v)
			}
		}
		if done >= 1 {
			if inflight := len(views) - done; inflight < 4 {
				t.Fatalf("only %d jobs in flight at kill time, want >= 4", inflight)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no job completed before the kill deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait() // SIGKILL: non-zero by design

	// Restart over the same directory: the journal replays, finished
	// jobs reload, unfinished ones re-enqueue and resume.
	base2, child2 := startChaosChild(t, dir)
	deadline = time.Now().Add(180 * time.Second)
	var views []jobView
	for {
		views = chaosListJobs(t, base2)
		if len(views) != len(chaosJobs) {
			t.Fatalf("restart lists %d jobs, acknowledged %d", len(views), len(chaosJobs))
		}
		done := 0
		for _, v := range views {
			switch v.Status {
			case "done":
				done++
			case "failed":
				t.Fatalf("acknowledged job failed after restart: %+v", v)
			}
		}
		if done == len(chaosJobs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs incomplete after restart: %+v", views)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Byte-identity: every acknowledged job's digest equals the
	// oracle-validated crash-free reference for that job.
	for _, v := range views {
		cj, ok := ids[v.ID]
		if !ok {
			t.Fatalf("restart invented job %s", v.ID)
		}
		if v.Digest == "" || v.Digest != refs[cj] {
			t.Fatalf("job %s (%v) digest = %q, want crash-free %q", v.ID, cj, v.Digest, refs[cj])
		}
	}

	// Accounting: every acknowledged job was either reloaded finished or
	// recovered unfinished, and the split matches the schedule endpoint
	// (reloaded results keep their digest but not their rendered
	// schedule).
	resp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsText, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	reloaded := chaosMetric(t, string(metricsText), "paradigmd_jobs_reloaded_total")
	recovered := chaosMetric(t, string(metricsText), "paradigmd_jobs_recovered_total")
	if reloaded < 1 || recovered < 1 || reloaded+recovered != len(chaosJobs) {
		t.Fatalf("reloaded %d + recovered %d, want a split of %d with both sides non-empty\nmetrics:\n%s",
			reloaded, recovered, len(chaosJobs), metricsText)
	}
	gone, served := 0, 0
	for _, v := range views {
		resp, err := http.Get(base2 + "/jobs/" + v.ID + "/schedule")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusGone:
			gone++
		case http.StatusOK:
			if len(body) == 0 {
				t.Fatalf("job %s served an empty schedule", v.ID)
			}
			served++
		default:
			t.Fatalf("schedule for %s = %s", v.ID, resp.Status)
		}
	}
	if gone != reloaded || served != recovered {
		t.Fatalf("schedules: %d gone / %d served, want %d / %d", gone, served, reloaded, recovered)
	}

	// The journal has no lag, health is back to ok, and the completed
	// jobs' WALs were collected — only the journal itself remains.
	resp, err = http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health healthView
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if health.State != "ok" || health.JournalLag != 0 || health.RecoveredPending != 0 {
		t.Fatalf("final healthz = %+v, want ok with empty backlog", health)
	}
	wals, err := filepath.Glob(filepath.Join(dir, "job-*.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) != 0 {
		t.Fatalf("completed jobs left WALs behind: %v", wals)
	}

	// Graceful shutdown drains cleanly.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.Wait(); err != nil {
		t.Fatalf("graceful shutdown exited dirty: %v", err)
	}
}
