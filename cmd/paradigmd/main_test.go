package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"paradigm"
)

func testMachine(t *testing.T) machineModel {
	t.Helper()
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		t.Fatal(err)
	}
	return machineModel{
		src:     cal,
		cal:     cal,
		profile: paradigm.NewCM5,
		name:    "CM5",
		kind:    paradigm.MachineTrained,
	}
}

// testServerDir builds a server over an explicit checkpoint directory
// (reused across restarts by the recovery tests).
func testServerDir(t *testing.T, dir string, queue, workers int) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(testMachine(t), serverConfig{
		ckptDir: dir, queueCap: queue, walRetain: retainFailed, retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.start(workers)
	hs := httptest.NewServer(srv.handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func testServer(t *testing.T, queue int, workers int) (*server, *httptest.Server) {
	t.Helper()
	return testServerDir(t, t.TempDir(), queue, workers)
}

func submitJob(t *testing.T, base, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServiceJobLifecycle(t *testing.T) {
	srv, hs := testServer(t, 4, 1)
	resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var view jobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/jobs/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.Status == "done" || view.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Status != "done" || view.Actual <= 0 {
		t.Fatalf("job = %+v", view)
	}

	resp, err := http.Get(hs.URL + "/jobs/" + acc.ID + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule = %s", resp.Status)
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "paradigmd_jobs_completed_total 1") {
		t.Fatalf("metrics missing completion counter:\n%s", text)
	}
	if srv.completed() != 1 {
		t.Fatalf("completed = %d, want 1", srv.completed())
	}
}

// A malformed job must come back as a failed status, not a crashed
// worker: the library's panic containment holds the boundary.
func TestServiceBadJobFails(t *testing.T) {
	_, hs := testServer(t, 4, 1)
	resp := submitJob(t, hs.URL, `{"program":"nope","size":8,"procs":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/jobs/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view jobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.Status == "failed" {
			if !strings.Contains(view.Error, "unknown program") {
				t.Fatalf("failure reason = %q", view.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("bad job never failed: %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Admission control: with no workers draining the queue, submissions
// past the bound are shed with 429, and invalid payloads are 400s.
func TestServiceLoadShedding(t *testing.T) {
	srv, hs := testServer(t, 1, 0) // no workers: the queue only fills
	if resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %s", resp.Status)
	}
	// A distinct spec cannot coalesce onto the queued job, so it needs a
	// queue slot of its own and is shed.
	resp := submitJob(t, hs.URL, `{"program":"cmm","size":32,"procs":4}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %s, want 429", resp.Status)
	}
	resp.Body.Close()
	if !strings.Contains(srv.reg.Snapshot().Text(), "paradigmd_jobs_rejected_total 1") {
		t.Fatal("rejection not counted")
	}
	if resp := submitJob(t, hs.URL, `{"size":0,"procs":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid payload = %s, want 400", resp.Status)
	}
	// The shed job must not be listed.
	listResp, err := http.Get(hs.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var views []jobView
	if err := json.NewDecoder(listResp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 {
		t.Fatalf("listed %d jobs, want 1", len(views))
	}
}

// waitForStatus polls a job until it reaches a terminal status.
func waitForStatus(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view jobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.Status == "done" || view.Status == "failed" {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, view.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getHealth(t *testing.T, base string) (healthView, int) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthView
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h, resp.StatusCode
}

// An oversized submit body is refused with 413, not decoded from a
// silent truncation.
func TestServiceSubmitBodyTooLarge(t *testing.T) {
	srv, hs := testServer(t, 4, 0)
	body := `{"program":"cmm","size":16,"procs":4,` +
		`"pad":"` + strings.Repeat("x", maxSubmitBytes) + `"}`
	resp := submitJob(t, hs.URL, body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %s, want 413", resp.Status)
	}
	if !strings.Contains(srv.reg.Snapshot().Text(), "paradigmd_jobs_rejected_total 1") {
		t.Fatal("oversized rejection not counted")
	}
	// A body just under the limit still parses.
	small := `{"program":"cmm","size":16,"procs":4}`
	if resp := submitJob(t, hs.URL, small); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("small submit = %s, want 202", resp.Status)
	}
}

// /healthz walks its three states: ok when idle, degraded while the
// breaker is shedding the solver, draining (503) after drain starts.
func TestServiceHealthStates(t *testing.T) {
	srv, hs := testServer(t, 4, 0)
	if h, code := getHealth(t, hs.URL); code != http.StatusOK || h.State != "ok" || h.Breaker != "closed" {
		t.Fatalf("idle healthz = %d %+v, want 200 ok/closed", code, h)
	}

	// A queued-but-unrun job is journal lag and queue depth.
	if resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	if h, _ := getHealth(t, hs.URL); h.QueueDepth != 1 || h.JournalLag != 1 {
		t.Fatalf("queued healthz = %+v, want depth 1 lag 1", h)
	}

	// Trip the shared breaker: the service is degraded but still serving.
	for i := 0; i < 3; i++ {
		srv.breaker.Failure()
	}
	if h, code := getHealth(t, hs.URL); code != http.StatusOK || h.State != "degraded" || h.Breaker == "closed" {
		t.Fatalf("tripped healthz = %d %+v, want 200 degraded", code, h)
	}
	srv.breaker.Success()

	srv.drain()
	if h, code := getHealth(t, hs.URL); code != http.StatusServiceUnavailable || h.State != "draining" {
		t.Fatalf("draining healthz = %d %+v, want 503 draining", code, h)
	}
	// Drain's final sweep ran the queued job; the journal has no lag.
	if h, _ := getHealth(t, hs.URL); h.JournalLag != 0 {
		t.Fatalf("post-drain journal lag = %d, want 0", h.JournalLag)
	}
}

// The drain/submit race: a submit racing drain() either gets an
// admission refusal or its job completes — an accepted job is never
// left queued. Run with -race.
func TestServiceSubmitDrainRace(t *testing.T) {
	srv, hs := testServer(t, 64, 2)
	// Warm the allocation cache so racing jobs replay instantly.
	first := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`)
	var acc struct{ ID string }
	if err := json.NewDecoder(first.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	waitForStatus(t, hs.URL, acc.ID)

	var (
		mu       sync.Mutex
		accepted []string
		wg       sync.WaitGroup
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`)
				switch resp.StatusCode {
				case http.StatusAccepted:
					var a struct{ ID string }
					if err := json.NewDecoder(resp.Body).Decode(&a); err == nil {
						mu.Lock()
						accepted = append(accepted, a.ID)
						mu.Unlock()
					}
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					// Refused: fine, as long as it was not registered.
				default:
					t.Errorf("racing submit = %s", resp.Status)
				}
				resp.Body.Close()
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	srv.drain()
	wg.Wait()

	// Every acknowledged job must be terminal — drain never drops one.
	srv.mu.Lock()
	defer srv.mu.Unlock()
	for _, id := range accepted {
		j, ok := srv.jobs[id]
		if !ok {
			t.Fatalf("accepted job %s not registered", id)
		}
		if j.Status != "done" && j.Status != "failed" {
			t.Fatalf("accepted job %s left in %q after drain", id, j.Status)
		}
	}
	if len(srv.jobs) != len(accepted)+1 {
		t.Fatalf("registered %d jobs, acknowledged %d", len(srv.jobs), len(accepted)+1)
	}
}

// A seeded fault plan with a recovery budget runs the job through the
// degraded path: the processor loss is survived, the journaled digest
// reflects the recovery trajectory, and the recovery counters move.
func TestServiceFaultSeedRecovery(t *testing.T) {
	srv, hs := testServer(t, 4, 1)
	resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4,"recover":2,"retries":3,"fault_seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	view := waitForStatus(t, hs.URL, acc.ID)
	if view.Status != "done" {
		t.Fatalf("faulted job = %+v, want done", view)
	}
	if view.Digest == "" {
		t.Fatal("faulted job has no digest")
	}
	srv.mu.Lock()
	res := srv.jobs[acc.ID].res
	srv.mu.Unlock()
	if !res.Recovered || len(res.FailedProcs) == 0 {
		t.Fatalf("job did not take the recovery path: recovered=%v failed=%v",
			res.Recovered, res.FailedProcs)
	}
	text := srv.reg.Snapshot().Text()
	if !strings.Contains(text, "recovery_attempts_total") {
		t.Fatalf("metrics missing recovery accounting:\n%s", text)
	}
}

// Restart recovery: a new server over the same checkpoint directory
// reloads finished jobs (digest intact, schedule gone) and re-enqueues
// unfinished ones, which complete with digests identical to a fresh
// crash-free run.
func TestServiceRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1 := testServerDir(t, dir, 4, 0) // no workers: jobs stay queued
	var ids []string
	for _, body := range []string{
		`{"program":"cmm","size":16,"procs":4}`,
		`{"program":"strassen","size":16,"procs":4}`,
		`{"program":"cmm","size":16,"procs":8}`,
	} {
		resp := submitJob(t, hs1.URL, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %s", resp.Status)
		}
		var acc struct{ ID string }
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ids = append(ids, acc.ID)
	}
	// Run exactly one job to completion, then abandon the server — the
	// moral equivalent of a crash with two jobs still queued.
	it, ok := srv1.queue.TryPop()
	if !ok {
		t.Fatal("no queued job to run")
	}
	srv1.runJob(it.Payload.(*job))
	doneDigest := func() string {
		srv1.mu.Lock()
		defer srv1.mu.Unlock()
		if j := srv1.jobs[ids[0]]; j.Status == "done" {
			return j.Digest
		}
		return ""
	}()
	if doneDigest == "" {
		t.Fatal("first job did not complete")
	}

	// "Restart": a second server over the same directory.
	srv2, err := newServer(testMachine(t), serverConfig{
		ckptDir: dir, queueCap: 4, walRetain: retainFailed, retries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.handler())
	t.Cleanup(hs2.Close)

	// Before the workers start, the recovered backlog reports degraded.
	if h, code := getHealth(t, hs2.URL); code != http.StatusOK || h.State != "degraded" || h.RecoveredPending != 2 {
		t.Fatalf("boot healthz = %d %+v, want degraded with 2 pending", code, h)
	}
	text := srv2.reg.Snapshot().Text()
	for _, want := range []string{"paradigmd_jobs_reloaded_total 1", "paradigmd_jobs_recovered_total 2"} {
		if !strings.Contains(text, want) {
			t.Fatalf("boot metrics missing %q:\n%s", want, text)
		}
	}

	// The finished job survives with its digest; its rendered schedule
	// did not survive and says so.
	reloaded := waitForStatus(t, hs2.URL, ids[0])
	if reloaded.Status != "done" || reloaded.Digest != doneDigest {
		t.Fatalf("reloaded job = %+v, want done with digest %s", reloaded, doneDigest)
	}
	resp, err := http.Get(hs2.URL + "/jobs/" + ids[0] + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("reloaded schedule = %s, want 410", resp.Status)
	}

	srv2.start(1)
	for i, id := range ids[1:] {
		view := waitForStatus(t, hs2.URL, id)
		if view.Status != "done" {
			t.Fatalf("recovered job %s = %+v", id, view)
		}
		// Byte-identity: the recovered run's digest equals a fresh
		// library run of the same job.
		want := referenceDigest(t, i)
		if view.Digest != want {
			t.Fatalf("recovered job %s digest = %s, want crash-free %s", id, view.Digest, want)
		}
	}
	if h, _ := getHealth(t, hs2.URL); h.State != "ok" || h.RecoveredPending != 0 || h.JournalLag != 0 {
		t.Fatalf("post-recovery healthz = %+v, want ok with no backlog", h)
	}
}

// referenceDigest computes the crash-free digest for the i-th pending
// job of TestServiceRestartRecovery directly through the library.
func referenceDigest(t *testing.T, i int) string {
	t.Helper()
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		t.Fatal(err)
	}
	var (
		p     *paradigm.Program
		procs int
	)
	switch i {
	case 0:
		p, err = paradigm.Strassen(16, cal)
		procs = 4
	default:
		p, err = paradigm.ComplexMatMul(16, cal)
		procs = 8
	}
	if err != nil {
		t.Fatal(err)
	}
	res, err := paradigm.Run(p, paradigm.NewCM5(procs), cal, procs)
	if err != nil {
		t.Fatal(err)
	}
	return res.Digest()
}

// A corrupt job journal refuses boot with the typed sentinel instead of
// silently dropping accepted jobs.
func TestServiceCorruptJournalRefused(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1 := testServerDir(t, dir, 4, 1)
	resp := submitJob(t, hs1.URL, `{"program":"cmm","size":16,"procs":4}`)
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForStatus(t, hs1.URL, acc.ID)
	srv1.drain()

	// Submits land on the default tenant's shard: corrupt the shard file
	// that actually holds records (the only one with more than a header).
	shards, err := filepath.Glob(filepath.Join(dir, "jobs-shard-*.journal"))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shard files: %v (%v)", shards, err)
	}
	path, best := "", int64(0)
	for _, p := range shards {
		if fi, err := os.Stat(p); err == nil && fi.Size() > best {
			path, best = p, fi.Size()
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = newServer(testMachine(t), serverConfig{
		ckptDir: dir, queueCap: 4, walRetain: retainFailed, retries: 2,
	})
	if !errors.Is(err, paradigm.ErrJobJournalCorrupt) {
		t.Fatalf("boot over corrupt journal = %v, want ErrJobJournalCorrupt", err)
	}
}

// WAL retention: a completed job's WAL is collected on committed
// completion, a failed job's WAL is kept under the default policy, and
// retain-all keeps everything.
func TestServiceWALRetention(t *testing.T) {
	srv, hs := testServer(t, 4, 1)
	resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`)
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view := waitForStatus(t, hs.URL, acc.ID); view.Status != "done" {
		t.Fatalf("job = %+v", view)
	}
	walPath := filepath.Join(srv.ckptDir, "job-"+acc.ID+".wal")
	if _, err := os.Stat(walPath); !os.IsNotExist(err) {
		t.Fatalf("completed job WAL not collected: %v", err)
	}
	if !strings.Contains(srv.reg.Snapshot().Text(), "paradigmd_wal_gc_total 1") {
		t.Fatal("WAL GC not counted")
	}

	// Policy matrix, directly against gcWAL.
	mk := func(id string) string {
		p := filepath.Join(srv.ckptDir, "job-"+id+".wal")
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		retain  string
		success bool
		kept    bool
	}{
		{retainFailed, false, true},
		{retainAll, true, true},
		{retainAll, false, true},
		{retainNone, false, false},
	}
	for i, c := range cases {
		id := "gc" + strconv.Itoa(i)
		p := mk(id)
		srv.walRetain = c.retain
		srv.gcWAL(id, c.success)
		_, err := os.Stat(p)
		if kept := err == nil; kept != c.kept {
			t.Fatalf("retain=%s success=%v: kept=%v, want %v", c.retain, c.success, kept, c.kept)
		}
	}
}

// Graceful drain: accepted jobs finish, new submissions are refused
// with 503, and health flips to draining.
func TestServiceGracefulDrain(t *testing.T) {
	srv, hs := testServer(t, 4, 1)
	if resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	srv.drain()
	if srv.completed() != 1 {
		t.Fatalf("drain finished %d jobs, want 1", srv.completed())
	}
	if resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %s, want 503", resp.Status)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %s, want 503", resp.Status)
	}
}
