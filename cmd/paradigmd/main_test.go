package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"paradigm"
)

func testServer(t *testing.T, queue int, workers int) (*server, *httptest.Server) {
	t.Helper()
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		t.Fatal(err)
	}
	mach := machineModel{
		src:     cal,
		cal:     cal,
		profile: paradigm.NewCM5,
		name:    "CM5",
		kind:    paradigm.MachineTrained,
	}
	srv := newServer(mach, t.TempDir(), queue, 0)
	srv.start(workers)
	hs := httptest.NewServer(srv.handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func submitJob(t *testing.T, base, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServiceJobLifecycle(t *testing.T) {
	srv, hs := testServer(t, 4, 1)
	resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var view jobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/jobs/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.Status == "done" || view.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", view.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.Status != "done" || view.Actual <= 0 {
		t.Fatalf("job = %+v", view)
	}

	resp, err := http.Get(hs.URL + "/jobs/" + acc.ID + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule = %s", resp.Status)
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "paradigmd_jobs_completed_total 1") {
		t.Fatalf("metrics missing completion counter:\n%s", text)
	}
	if srv.completed() != 1 {
		t.Fatalf("completed = %d, want 1", srv.completed())
	}
}

// A malformed job must come back as a failed status, not a crashed
// worker: the library's panic containment holds the boundary.
func TestServiceBadJobFails(t *testing.T) {
	_, hs := testServer(t, 4, 1)
	resp := submitJob(t, hs.URL, `{"program":"nope","size":8,"procs":4}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(hs.URL + "/jobs/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view jobView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if view.Status == "failed" {
			if !strings.Contains(view.Error, "unknown program") {
				t.Fatalf("failure reason = %q", view.Error)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("bad job never failed: %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Admission control: with no workers draining the queue, submissions
// past the bound are shed with 429, and invalid payloads are 400s.
func TestServiceLoadShedding(t *testing.T) {
	srv, hs := testServer(t, 1, 0) // no workers: the queue only fills
	if resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %s", resp.Status)
	}
	resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %s, want 429", resp.Status)
	}
	resp.Body.Close()
	if !strings.Contains(srv.reg.Snapshot().Text(), "paradigmd_jobs_rejected_total 1") {
		t.Fatal("rejection not counted")
	}
	if resp := submitJob(t, hs.URL, `{"size":0,"procs":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid payload = %s, want 400", resp.Status)
	}
	// The shed job must not be listed.
	listResp, err := http.Get(hs.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var views []jobView
	if err := json.NewDecoder(listResp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 1 {
		t.Fatalf("listed %d jobs, want 1", len(views))
	}
}

// Graceful drain: accepted jobs finish, new submissions are refused
// with 503, and health flips to draining.
func TestServiceGracefulDrain(t *testing.T) {
	srv, hs := testServer(t, 4, 1)
	if resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %s", resp.Status)
	}
	srv.drain()
	if srv.completed() != 1 {
		t.Fatalf("drain finished %d jobs, want 1", srv.completed())
	}
	if resp := submitJob(t, hs.URL, `{"program":"cmm","size":16,"procs":4}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %s, want 503", resp.Status)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %s, want 503", resp.Status)
	}
}
