// Cluster-mode service tests and the PR 10 load benchmarks: the seeded
// loadgen arrival wave drives a paradigmd whose jobs share one
// wall-clock processor pool, with deterministic partition deaths
// injected every Nth placement. The gates: every acknowledged job
// reaches a terminal state with zero losses while processors die and
// retire mid-stream, the pool's health and decisions are visible on
// /metrics, and a request larger than the surviving pool is shrunk to
// the live capacity (degraded) rather than refused. `make bench-pr10`
// folds the cold/warm × faults/no-faults matrix into BENCH_PR10.json.
package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"paradigm"
	"paradigm/internal/admission"
)

// clusterLoadServer builds an in-process cluster-mode server: a
// 12-processor pool behind the least-loaded router, killing one
// partition processor on every faultEvery-th placement (0: fault-free).
func clusterLoadServer(tb testing.TB, poolProcs, faultEvery int) (*server, *httptest.Server) {
	tb.Helper()
	policy, err := admission.Decode([]byte(loadPolicy))
	if err != nil {
		tb.Fatal(err)
	}
	cal, err := paradigm.Calibrate(paradigm.NewCM5(64))
	if err != nil {
		tb.Fatal(err)
	}
	mach := machineModel{
		src: cal, cal: cal, profile: paradigm.NewCM5,
		name: "CM5", kind: paradigm.MachineTrained,
	}
	srv, err := newServer(mach, serverConfig{
		queueCap: 512, retries: 2, walRetain: retainFailed, policy: policy,
		cluster: clusterConfig{procs: poolProcs, router: "least-loaded", faultEvery: faultEvery},
	})
	if err != nil {
		tb.Fatal(err)
	}
	srv.start(3)
	hs := httptest.NewServer(srv.handler())
	tb.Cleanup(hs.Close)
	return srv, hs
}

// TestServiceClusterFaults is the service face of the cluster chaos
// gate: a seeded arrival wave against a cluster-mode server with a
// partition death on every 3rd placement. Twelve placements retire four
// processors; every acknowledged job must still finish (the pipeline
// recovers each faulted run onto the partition's survivors), and an
// oversized follow-up request must be granted the shrunken pool's full
// live capacity — degraded, not refused.
func TestServiceClusterFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster load harness skipped in -short")
	}
	srv, hs := clusterLoadServer(t, 12, 3)
	defer srv.drain()

	// The wave: driveLoad fails the test if any acknowledged job is lost
	// or finishes failed, which is the zero-jobs-lost bar.
	driveLoad(t, srv, hs.URL, 12, 11, loadRate)

	// Deterministic damage: 12 placements, a death every 3rd, none
	// blocked by the pool floor — exactly 4 processors retired.
	metrics := scrapeMetrics(t, hs.URL)
	for _, want := range []string{
		"paradigmd_cluster_placements_total 12",
		"paradigmd_cluster_faults_injected_total 4",
		"paradigmd_cluster_retired_total 4",
		"paradigmd_cluster_pool_alive 8",
		"paradigmd_cluster_pool_dead 4",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Shrink before reject: 16 processors requested, 8 alive — the job
	// runs degraded on all 8 survivors instead of being refused.
	resp, err := http.Post(hs.URL+"/jobs", "application/json",
		strings.NewReader(`{"program":"cmm","size":16,"procs":16}`))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("oversized submit = %s", resp.Status)
	}
	view := pollDone(t, hs.URL, acc.ID)
	if view.Granted != 8 || !view.Degraded {
		t.Fatalf("oversized job granted %d (degraded %t), want 8 degraded on the shrunken pool",
			view.Granted, view.Degraded)
	}
	if !strings.Contains(scrapeMetrics(t, hs.URL), "paradigmd_cluster_degraded_total 1") {
		t.Fatal("degraded grant not counted on /metrics")
	}
}

// TestServiceClusterCoalescingDisabled pins that cluster mode turns off
// submit coalescing: a placement-dependent outcome (granted size, fault
// injection) makes identical specs non-interchangeable, so concurrent
// identical submits must each run.
func TestServiceClusterCoalescingDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster load harness skipped in -short")
	}
	srv, hs := clusterLoadServer(t, 12, 0)
	defer srv.drain()
	for i := 0; i < 3; i++ {
		resp, err := http.Post(hs.URL+"/jobs", "application/json",
			strings.NewReader(`{"program":"cmm","size":16,"procs":4,"tenant":"a"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %s", i, resp.Status)
		}
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		srv.mu.Lock()
		done := 0
		for _, j := range srv.jobs {
			if j.Coalesced {
				srv.mu.Unlock()
				t.Fatal("identical submits coalesced in cluster mode")
			}
			if j.Status == "done" {
				done++
			}
		}
		n := len(srv.jobs)
		srv.mu.Unlock()
		if done == n && n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 3 jobs done", done)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if strings.Contains(scrapeMetrics(t, hs.URL), "paradigmd_jobs_coalesced_total") {
		t.Fatal("coalescing counter moved in cluster mode")
	}
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return string(body)
}

func pollDone(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view jobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch view.Status {
		case "done":
			return view
		case "failed":
			t.Fatalf("job %s failed: %s", id, view.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 60s", id, view.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// benchClusterLoad drives the PR 9 arrival wave against a cluster-mode
// server. Cold builds a fresh server (and pool) per iteration; warm
// replays the wave against a server whose caches — and, with faults,
// whose already-shrunken pool — the first wave conditioned.
func benchClusterLoad(b *testing.B, faultEvery int, warm bool) {
	if warm {
		srv, hs := clusterLoadServer(b, 16, faultEvery)
		driveLoad(b, srv, hs.URL, loadJobs, 11, loadRate)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := driveLoad(b, srv, hs.URL, loadJobs, 11, loadRate)
			b.ReportMetric(res.jobsPerSec, "jobs/s")
			b.ReportMetric(float64(res.p99.Milliseconds()), "p99_ms")
		}
		b.StopTimer()
		srv.drain()
		return
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, hs := clusterLoadServer(b, 16, faultEvery)
		b.StartTimer()
		res := driveLoad(b, srv, hs.URL, loadJobs, 11, loadRate)
		b.ReportMetric(res.jobsPerSec, "jobs/s")
		b.ReportMetric(float64(res.p99.Milliseconds()), "p99_ms")
		b.StopTimer()
		srv.drain()
		b.StartTimer()
	}
}

func BenchmarkClusterLoadColdNoFaults(b *testing.B) { benchClusterLoad(b, 0, false) }
func BenchmarkClusterLoadColdFaults(b *testing.B)   { benchClusterLoad(b, 8, false) }
func BenchmarkClusterLoadWarmNoFaults(b *testing.B) { benchClusterLoad(b, 0, true) }
func BenchmarkClusterLoadWarmFaults(b *testing.B)   { benchClusterLoad(b, 8, true) }
