// Command paradigm runs the allocation-and-scheduling pipeline on one of
// the built-in test programs or on an MDG loaded from JSON.
//
// Usage:
//
//	paradigm -program cmm      -procs 16            # full pipeline + simulation
//	paradigm -program strassen -procs 64 -spmd      # pure data-parallel baseline
//	paradigm -program example  -procs 4             # the Figure 1-2 example
//	paradigm -mdg graph.json   -procs 32 -dot       # allocate/schedule a raw MDG
//
// Output: the allocation, the PSA schedule (table + Gantt), the Theorem
// 1-3 bounds, and — for executable programs — the simulated execution
// time and numerical verification.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"paradigm"
	"paradigm/internal/mdg"
	"paradigm/internal/sched"
	"paradigm/internal/trace"
)

func main() {
	var (
		progName = flag.String("program", "", "built-in program: cmm | strassen | pipeline | example")
		mdgPath  = flag.String("mdg", "", "path to an MDG JSON file (alternative to -program)")
		srcPath  = flag.String("src", "", "path to a matrix-program source file (alternative to -program)")
		procs    = flag.Int("procs", 16, "system size p")
		size     = flag.Int("size", 64, "matrix size for built-in programs (Strassen doubles it)")
		spmd     = flag.Bool("spmd", false, "use the pure data-parallel baseline instead of the convex pipeline")
		dot      = flag.Bool("dot", false, "print the MDG in Graphviz DOT and exit")
		pb       = flag.Int("pb", 0, "processor bound PB override (0 = Corollary 1)")
		traceOut = flag.String("trace", "", "write a Chrome trace (predicted vs actual) to this file")
		machName = flag.String("machine", "cm5", "machine profile: cm5 | paragon")
		policy   = flag.String("policy", "est", "ready-queue policy: est | fifo | hlf")
		depth    = flag.Int("depth", 1, "Strassen recursion depth (program strassen only)")
	)
	flag.Parse()
	if err := run(*progName, *mdgPath, *srcPath, *traceOut, *machName, *policy, *procs, *size, *depth, *spmd, *dot, *pb); err != nil {
		fmt.Fprintln(os.Stderr, "paradigm:", err)
		os.Exit(1)
	}
}

func run(progName, mdgPath, srcPath, traceOut, machName, policy string, procs, size, depth int, spmd, dot bool, pb int) error {
	var pol sched.Policy
	switch policy {
	case "est":
		pol = sched.LowestEST
	case "fifo":
		pol = sched.FIFO
	case "hlf":
		pol = sched.HLF
	default:
		return fmt.Errorf("unknown policy %q (want est, fifo or hlf)", policy)
	}
	profile := paradigm.NewCM5
	switch machName {
	case "cm5":
	case "paragon":
		profile = paradigm.NewParagon
	default:
		return fmt.Errorf("unknown machine %q (want cm5 or paragon)", machName)
	}
	m := profile(procs)
	cal, err := paradigm.Calibrate(profile(64))
	if err != nil {
		return err
	}

	// Raw-MDG mode: allocate and schedule only (no kernels to simulate).
	if mdgPath != "" {
		data, err := os.ReadFile(mdgPath)
		if err != nil {
			return err
		}
		var g mdg.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return err
		}
		if _, _, err := g.EnsureStartStop(); err != nil {
			return err
		}
		if dot {
			fmt.Print(g.DOT(mdgPath))
			return nil
		}
		return allocateAndSchedule(&g, cal.Model(), procs, pb)
	}

	var p *paradigm.Program
	if srcPath != "" {
		src, err := os.ReadFile(srcPath)
		if err != nil {
			return err
		}
		p, err = paradigm.CompileSource(srcPath, string(src), cal)
		if err != nil {
			return err
		}
	}
	switch progName {
	case "":
		if p != nil {
			break // compiled from -src above
		}
		return fmt.Errorf("one of -program, -src or -mdg is required (see -h)")
	case "cmm":
		p, err = paradigm.ComplexMatMul(size, cal)
	case "strassen":
		p, err = paradigm.StrassenRecursive(2*size, depth, cal)
	case "pipeline":
		p, err = paradigm.SyntheticPipeline(size, 4, 3, cal)
	case "example":
		g := paradigm.FigureOneMDG()
		if dot {
			fmt.Print(g.DOT("figure-1"))
			return nil
		}
		return allocateAndSchedule(g, paradigm.Model{}, procs, pb)
	default:
		return fmt.Errorf("unknown program %q", progName)
	}
	if err != nil {
		return err
	}
	if dot {
		fmt.Print(p.G.DOT(p.Name))
		return nil
	}

	var res *paradigm.Result
	if spmd {
		res, err = paradigm.RunSPMD(p, m, cal, procs)
	} else {
		model := cal.Model()
		ar, aerr := paradigm.Allocate(p.G, model, procs)
		if aerr != nil {
			return aerr
		}
		s, serr := paradigm.BuildSchedule(p.G, model, ar.P, procs,
			paradigm.ScheduleOptions{PB: pb, Policy: pol})
		if serr != nil {
			return serr
		}
		sim, xerr := paradigm.Execute(p, s, m.WithProcs(procs))
		if xerr != nil {
			return xerr
		}
		res = &paradigm.Result{Alloc: ar, Sched: s, Sim: sim,
			Predicted: s.Makespan, Actual: sim.Makespan}
	}
	if err != nil {
		return err
	}
	fmt.Printf("program: %s on %d processors (%s)\n\n", p.Name, procs, mode(spmd))
	fmt.Printf("allocation: Phi = %.6f s (A_p = %.6f, C_p = %.6f)\n", res.Alloc.Phi, res.Alloc.Ap, res.Alloc.Cp)
	fmt.Printf("continuous p_i: %s\n\n", formatAlloc(res.Alloc.P))
	fmt.Print(res.Sched.Table(p.G))
	fmt.Println()
	fmt.Print(res.Sched.Gantt(p.G, 80))
	if !spmd {
		t1, t2, t3, err := paradigm.TheoremBounds(procs, res.Sched.PB)
		if err != nil {
			return err
		}
		fmt.Printf("\nbounds: PB = %d; Theorem 1 = %.2f, Theorem 2 = %.2f, Theorem 3 = %.2f (T_psa <= %.4f s)\n",
			res.Sched.PB, t1, t2, t3, t3*res.Alloc.Phi)
	}
	fmt.Printf("\npredicted T_psa = %.6f s, simulated actual = %.6f s (ratio %.3f)\n",
		res.Predicted, res.Actual, res.Predicted/res.Actual)
	worst, err := paradigm.Verify(p, res.Sim)
	if err != nil {
		return err
	}
	fmt.Printf("numerical verification: max |deviation| from sequential reference = %.3g\n", worst)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteRun(f, p.G, res.Sched, res.Sim); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (open in chrome://tracing or Perfetto)\n", traceOut)
	}
	return nil
}

func mode(spmd bool) string {
	if spmd {
		return "SPMD baseline"
	}
	return "MPMD via convex allocation + PSA"
}

func allocateAndSchedule(g *paradigm.Graph, model paradigm.Model, procs, pb int) error {
	ar, err := paradigm.Allocate(g, model, procs)
	if err != nil {
		return err
	}
	s, err := paradigm.BuildSchedule(g, model, ar.P, procs, paradigm.ScheduleOptions{PB: pb})
	if err != nil {
		return err
	}
	fmt.Printf("allocation: Phi = %.6f s (A_p = %.6f, C_p = %.6f)\n", ar.Phi, ar.Ap, ar.Cp)
	fmt.Printf("continuous p_i: %s\n\n", formatAlloc(ar.P))
	fmt.Print(s.Table(g))
	fmt.Println()
	fmt.Print(s.Gantt(g, 80))
	fmt.Printf("\nT_psa = %.6f s (deviation from Phi: %+.1f%%)\n", s.Makespan, 100*(s.Makespan-ar.Phi)/ar.Phi)
	return nil
}

func formatAlloc(p []float64) string {
	out := ""
	for i, v := range p {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", v)
	}
	return out
}
