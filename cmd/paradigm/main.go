// Command paradigm runs the allocation-and-scheduling pipeline on one of
// the built-in test programs or on an MDG loaded from JSON.
//
// Usage:
//
//	paradigm -program cmm      -procs 16            # full pipeline + simulation
//	paradigm -program strassen -procs 64 -spmd      # pure data-parallel baseline
//	paradigm -program example  -procs 4             # the Figure 1-2 example
//	paradigm -mdg graph.json   -procs 32 -dot       # allocate/schedule a raw MDG
//	paradigm -program cmm -procs 8 -faults 'kill:1@0.01' -recover 2   # chaos run
//	paradigm -program cmm -procs 8 -checkpoint run.wal              # crash-safe run
//	paradigm -program cmm -procs 8 -checkpoint run.wal -resume      # resume a killed run
//
// Output: the allocation, the PSA schedule (table + Gantt), the Theorem
// 1-3 bounds, and — for executable programs — the simulated execution
// time and numerical verification.
//
// Observability: -trace writes a unified Chrome/Perfetto trace (predicted
// and actual node tracks, per-message comm flows, PSA decision instants,
// and the solver's Φ-convergence counter track); -metrics dumps the
// pipeline's metrics registry as text; -pprof writes a CPU profile of the
// pipeline run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"paradigm"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/sched"
	"paradigm/internal/trace"
)

func main() {
	var (
		progName = flag.String("program", "", "built-in program: cmm | strassen | pipeline | example")
		mdgPath  = flag.String("mdg", "", "path to an MDG JSON file (alternative to -program)")
		srcPath  = flag.String("src", "", "path to a matrix-program source file (alternative to -program)")
		procs    = flag.Int("procs", 16, "system size p")
		size     = flag.Int("size", 64, "matrix size for built-in programs (Strassen doubles it)")
		spmd     = flag.Bool("spmd", false, "use the pure data-parallel baseline instead of the convex pipeline")
		dot      = flag.Bool("dot", false, "print the MDG in Graphviz DOT and exit")
		pb       = flag.Int("pb", 0, "processor bound PB override (0 = Corollary 1)")
		traceOut = flag.String("trace", "", "write a unified Chrome/Perfetto trace to this file")
		metrics  = flag.Bool("metrics", false, "print the pipeline metrics registry after the run")
		pprofOut = flag.String("pprof", "", "write a CPU profile of the pipeline run to this file")
		machName = flag.String("machine", "cm5", "machine: a builtin name (cm5, paragon, cm5-hetero8, paragon-memcap8) or a path to a machine-spec JSON file")
		policy   = flag.String("policy", "est", "ready-queue policy: est | fifo | hlf")
		depth    = flag.Int("depth", 1, "Strassen recursion depth (program strassen only)")
		faults   = flag.String("faults", "", "fault schedule, e.g. 'kill:1@0.02,delay:3@0.005' or 'rand:42' (see cmd/paradigm/faults.go)")
		recov    = flag.Int("recover", 0, "max failure-aware rescheduling attempts after a fault halt (0 = surface the halt)")
		ckptPath = flag.String("checkpoint", "", "write-ahead checkpoint log path; an existing log resumes the killed run")
		resume   = flag.Bool("resume", false, "require an existing checkpoint log (error instead of starting fresh)")
	)
	flag.Parse()
	if err := run(*progName, *mdgPath, *srcPath, *traceOut, *pprofOut, *machName, *policy, *faults, *ckptPath,
		*procs, *size, *depth, *recov, *spmd, *dot, *metrics, *pb, *resume); err != nil {
		fmt.Fprintln(os.Stderr, "paradigm:", err)
		os.Exit(1)
	}
}

func run(progName, mdgPath, srcPath, traceOut, pprofOut, machName, policy, faults, ckptPath string,
	procs, size, depth, recov int, spmd, dot, metrics bool, pb int, resume bool) error {
	var pol sched.Policy
	switch policy {
	case "est":
		pol = sched.LowestEST
	case "fifo":
		pol = sched.FIFO
	case "hlf":
		pol = sched.HLF
	default:
		return fmt.Errorf("unknown policy %q (want est, fifo or hlf)", policy)
	}
	// Machine resolution: the two classic profiles keep the historical
	// trained (training-sets) path; any other builtin name or spec file
	// loads through the machine database as a file backend, no
	// calibration run needed.
	var mb paradigm.MachineBackend
	profile := paradigm.NewCM5
	switch machName {
	case "cm5":
	case "paragon":
		profile = paradigm.NewParagon
	default:
		var merr error
		if mb, merr = paradigm.ResolveMachine(machName); merr != nil {
			return merr
		}
	}

	if pprofOut != "" {
		pf, err := os.Create(pprofOut)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// One observer pair serves the whole run: the recorder feeds the
	// unified trace, the registry feeds -metrics. Neither is attached
	// unless its flag asks for it, keeping the default run on the
	// nil-observer fast path.
	ctx := context.Background()
	var rec *paradigm.EventRecorder
	reg := paradigm.NewMetrics()
	var observers []paradigm.Observer
	if traceOut != "" {
		rec = paradigm.NewEventRecorder()
		observers = append(observers, rec)
	}
	if metrics {
		observers = append(observers, paradigm.NewMetricsObserver(reg))
	}
	ob := paradigm.MultiObserver(observers...)

	// Crash safety: an existing WAL resumes the killed run (committed
	// stages — calibration included — are restored, not recomputed).
	if resume && ckptPath == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if ckptPath != "" && spmd {
		return fmt.Errorf("-checkpoint applies to the MPMD pipeline, not -spmd")
	}
	var cp *paradigm.Checkpoint
	if ckptPath != "" {
		var cerr error
		if resume {
			cp, cerr = paradigm.LoadCheckpoint(ckptPath)
		} else {
			cp, cerr = paradigm.OpenCheckpoint(ckptPath)
		}
		if cerr != nil {
			return cerr
		}
		defer cp.Close()
		if stages := cp.Stages(); len(stages) > 0 {
			fmt.Printf("checkpoint: resuming %s from committed stages %v\n\n", ckptPath, stages)
		}
	}
	calOpts := []paradigm.Option{paradigm.WithObserver(ob)}
	if cp != nil {
		calOpts = append(calOpts, paradigm.WithCheckpoint(cp))
	}

	// The trained path calibrates; a resolved backend already carries its
	// model. Either way src prices loops for the program builders and
	// model drives allocation/scheduling.
	var (
		m     paradigm.Machine
		cal   *paradigm.Calibration
		src   paradigm.LoopSource
		model paradigm.Model
		err   error
	)
	if mb != nil {
		m = mb.SimParams()
		src = mb
		model = paradigm.Model{Transfer: mb.Transfer()}
		fmt.Printf("machine: %s (%s backend, native p=%d)\n\n", mb.Name(), mb.Kind(), mb.Procs())
	} else {
		m = profile(procs)
		if cal, err = paradigm.CalibrateContext(ctx, profile(64), calOpts...); err != nil {
			return err
		}
		src = cal
		model = cal.Model()
	}
	if metrics {
		// An info-style gauge names the machine in the -metrics dump.
		name, kind := m.Name, paradigm.MachineTrained
		if mb != nil {
			name, kind = mb.Name(), mb.Kind()
		}
		reg.Gauge(fmt.Sprintf("machine_info{name=%q,kind=%q}", name, kind)).Set(1)
	}

	// Raw-MDG mode: allocate and schedule only (no kernels to simulate).
	if mdgPath != "" {
		data, err := os.ReadFile(mdgPath)
		if err != nil {
			return err
		}
		var g mdg.Graph
		if err := json.Unmarshal(data, &g); err != nil {
			return err
		}
		if _, _, err := g.EnsureStartStop(); err != nil {
			return err
		}
		if dot {
			fmt.Print(g.DOT(mdgPath))
			return nil
		}
		return allocateAndSchedule(ctx, &g, model, procs, pb, ob)
	}

	var p *paradigm.Program
	if srcPath != "" {
		text, err := os.ReadFile(srcPath)
		if err != nil {
			return err
		}
		p, err = paradigm.CompileSource(srcPath, string(text), src)
		if err != nil {
			return err
		}
	}
	switch progName {
	case "":
		if p != nil {
			break // compiled from -src above
		}
		return fmt.Errorf("one of -program, -src or -mdg is required (see -h)")
	case "cmm":
		p, err = paradigm.ComplexMatMul(size, src)
	case "strassen":
		p, err = paradigm.StrassenRecursive(2*size, depth, src)
	case "pipeline":
		p, err = paradigm.SyntheticPipeline(size, 4, 3, src)
	case "example":
		g := paradigm.FigureOneMDG()
		if dot {
			fmt.Print(g.DOT("figure-1"))
			return nil
		}
		return allocateAndSchedule(ctx, g, paradigm.Model{}, procs, pb, ob)
	default:
		return fmt.Errorf("unknown program %q", progName)
	}
	if err != nil {
		return err
	}
	if dot {
		fmt.Print(p.G.DOT(p.Name))
		return nil
	}

	opts := []paradigm.Option{
		paradigm.WithObserver(ob),
		paradigm.WithScheduleOptions(paradigm.ScheduleOptions{PB: pb, Policy: pol}),
	}
	if mb != nil {
		opts = append(opts, paradigm.WithMachine(mb))
	}
	if cp != nil {
		opts = append(opts, paradigm.WithCheckpoint(cp))
	}
	var plan *paradigm.FaultPlan
	if faults != "" {
		if spmd {
			return fmt.Errorf("-faults applies to the MPMD pipeline, not -spmd")
		}
		fs, err := parseFaultSpec(faults)
		if err != nil {
			return err
		}
		hint := 0.0
		if fs.random {
			// The random schedule scales fail times by a fault-free
			// pre-run's makespan (no observer: trace and metrics should
			// describe the faulted run only).
			preOpts := []paradigm.Option{paradigm.WithScheduleOptions(paradigm.ScheduleOptions{PB: pb, Policy: pol})}
			if mb != nil {
				preOpts = append(preOpts, paradigm.WithMachine(mb))
			}
			clean, err := paradigm.RunContext(ctx, p, m, cal, procs, preOpts...)
			if err != nil {
				return err
			}
			hint = clean.Actual
		}
		if plan, err = fs.resolve(procs, hint); err != nil {
			return err
		}
		opts = append(opts, paradigm.WithFaultPlan(plan), paradigm.WithRecovery(recov))
	}
	var res *paradigm.Result
	if spmd {
		res, err = paradigm.RunSPMDContext(ctx, p, m, cal, procs, opts...)
	} else {
		res, err = paradigm.RunContext(ctx, p, m, cal, procs, opts...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("program: %s on %d processors (%s)\n\n", p.Name, procs, mode(spmd))
	if plan != nil {
		fmt.Printf("faults: %d deaths, %d message faults, %d stragglers injected\n",
			len(plan.ProcFails), len(plan.MsgFaults), len(plan.Stragglers))
		if res.Recovered {
			fmt.Printf("recovery: survived loss of processors %v in %d attempt(s); replanned on %d survivors\n\n",
				res.FailedProcs, res.RecoveryAttempts, procs-len(res.FailedProcs))
		} else {
			fmt.Printf("recovery: not needed (no fault halted the run)\n\n")
		}
	}
	fmt.Printf("allocation: Phi = %.6f s (A_p = %.6f, C_p = %.6f)\n", res.Alloc.Phi, res.Alloc.Ap, res.Alloc.Cp)
	fmt.Printf("continuous p_i: %s\n\n", formatAlloc(res.Alloc.P))
	fmt.Print(res.Sched.Table(p.G))
	fmt.Println()
	fmt.Print(res.Sched.Gantt(p.G, 80))
	if !spmd {
		t1, t2, t3, err := paradigm.TheoremBounds(procs, res.Sched.PB)
		if err != nil {
			return err
		}
		fmt.Printf("\nbounds: PB = %d; Theorem 1 = %.2f, Theorem 2 = %.2f, Theorem 3 = %.2f (T_psa <= %.4f s)\n",
			res.Sched.PB, t1, t2, t3, t3*res.Alloc.Phi)
	}
	fmt.Printf("\npredicted T_psa = %.6f s, simulated actual = %.6f s (ratio %.3f)\n",
		res.Predicted, res.Actual, res.Predicted/res.Actual)
	worst, err := paradigm.Verify(p, res.Sim)
	if err != nil {
		return err
	}
	fmt.Printf("numerical verification: max |deviation| from sequential reference = %.3g\n", worst)
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		meta := trace.Meta{Machine: m.Name, MachineKind: string(paradigm.MachineTrained)}
		if mb != nil {
			meta = trace.Meta{Machine: mb.Name(), MachineKind: string(mb.Kind())}
		}
		if err := trace.WriteUnifiedMeta(f, p.G, res.Sched, res.Sim, rec.Events(), meta); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d events; open in chrome://tracing or Perfetto)\n",
			traceOut, rec.Len())
	}
	if metrics {
		fmt.Printf("\nmetrics:\n%s", reg.Snapshot().Text())
	}
	return nil
}

func mode(spmd bool) string {
	if spmd {
		return "SPMD baseline"
	}
	return "MPMD via convex allocation + PSA"
}

func allocateAndSchedule(ctx context.Context, g *paradigm.Graph, model paradigm.Model, procs, pb int, ob obs.Observer) error {
	ar, err := paradigm.AllocateContext(ctx, g, model, procs, paradigm.WithObserver(ob))
	if err != nil {
		return err
	}
	s, err := paradigm.BuildScheduleContext(ctx, g, model, ar.P, procs,
		paradigm.WithObserver(ob),
		paradigm.WithScheduleOptions(paradigm.ScheduleOptions{PB: pb}))
	if err != nil {
		return err
	}
	fmt.Printf("allocation: Phi = %.6f s (A_p = %.6f, C_p = %.6f)\n", ar.Phi, ar.Ap, ar.Cp)
	fmt.Printf("continuous p_i: %s\n\n", formatAlloc(ar.P))
	fmt.Print(s.Table(g))
	fmt.Println()
	fmt.Print(s.Gantt(g, 80))
	fmt.Printf("\nT_psa = %.6f s (deviation from Phi: %+.1f%%)\n", s.Makespan, 100*(s.Makespan-ar.Phi)/ar.Phi)
	return nil
}

func formatAlloc(p []float64) string {
	out := ""
	for i, v := range p {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%.2f", v)
	}
	return out
}
