// Fault-spec parsing for the -faults flag: a comma-separated list of
// fault events, or a seeded random schedule.
//
//	kill:P@T          fail-stop death of processor P at virtual time T
//	drop:SEQ          drop the SEQ-th message sent (global send order)
//	dup:SEQ           deliver a spurious duplicate of message SEQ
//	delay:SEQ@D       hold message SEQ in the network D extra seconds
//	slow:NODE:P@F     multiply node NODE's kernel time on processor P by F
//	rand:SEED         a seeded random schedule (one death, one delay),
//	                  scaled by a fault-free pre-run's makespan
//
// Example: -faults 'kill:1@0.02,delay:3@0.005' -recover 2
package main

import (
	"fmt"
	"strconv"
	"strings"

	"paradigm"
)

// faultSpec is the parsed -faults flag: either an explicit plan or a
// random seed whose plan needs a makespan hint from a clean pre-run.
type faultSpec struct {
	plan     *paradigm.FaultPlan
	randSeed uint64
	random   bool
}

func parseFaultSpec(spec string) (faultSpec, error) {
	var fs faultSpec
	plan := &paradigm.FaultPlan{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		kind, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return fs, fmt.Errorf("fault entry %q: want kind:args", entry)
		}
		switch kind {
		case "kill":
			p, at, err := splitAt(rest)
			if err != nil {
				return fs, fmt.Errorf("kill entry %q: %w", entry, err)
			}
			plan.ProcFails = append(plan.ProcFails, paradigm.ProcFail{Proc: p, At: at})
		case "drop":
			seq, err := strconv.Atoi(rest)
			if err != nil {
				return fs, fmt.Errorf("drop entry %q: %w", entry, err)
			}
			plan.MsgFaults = append(plan.MsgFaults, paradigm.MsgFault{Kind: paradigm.FaultDrop, Seq: seq})
		case "dup":
			seq, err := strconv.Atoi(rest)
			if err != nil {
				return fs, fmt.Errorf("dup entry %q: %w", entry, err)
			}
			plan.MsgFaults = append(plan.MsgFaults, paradigm.MsgFault{Kind: paradigm.FaultDuplicate, Seq: seq})
		case "delay":
			seq, extra, err := splitAt(rest)
			if err != nil {
				return fs, fmt.Errorf("delay entry %q: %w", entry, err)
			}
			plan.MsgFaults = append(plan.MsgFaults, paradigm.MsgFault{Kind: paradigm.FaultDelay, Seq: seq, Extra: extra})
		case "slow":
			nodeStr, rest2, ok := strings.Cut(rest, ":")
			if !ok {
				return fs, fmt.Errorf("slow entry %q: want slow:NODE:PROC@FACTOR", entry)
			}
			node, err := strconv.Atoi(nodeStr)
			if err != nil {
				return fs, fmt.Errorf("slow entry %q: %w", entry, err)
			}
			proc, factor, err := splitAt(rest2)
			if err != nil {
				return fs, fmt.Errorf("slow entry %q: %w", entry, err)
			}
			plan.Stragglers = append(plan.Stragglers, paradigm.Straggler{Node: node, Proc: proc, Factor: factor})
		case "rand":
			seed, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return fs, fmt.Errorf("rand entry %q: %w", entry, err)
			}
			fs.random, fs.randSeed = true, seed
		default:
			return fs, fmt.Errorf("unknown fault kind %q (want kill, drop, dup, delay, slow or rand)", kind)
		}
	}
	if fs.random && (len(plan.ProcFails)+len(plan.MsgFaults)+len(plan.Stragglers) > 0) {
		return fs, fmt.Errorf("rand:SEED cannot be combined with explicit fault entries")
	}
	fs.plan = plan
	return fs, nil
}

// splitAt parses "INT@FLOAT".
func splitAt(s string) (int, float64, error) {
	a, b, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want INT@VALUE, got %q", s)
	}
	i, err := strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	v, err := strconv.ParseFloat(b, 64)
	if err != nil {
		return 0, 0, err
	}
	return i, v, nil
}

// resolve turns the spec into a concrete plan, drawing the random
// schedule against the given makespan hint and system size.
func (fs faultSpec) resolve(procs int, hint float64) (*paradigm.FaultPlan, error) {
	if !fs.random {
		return fs.plan, nil
	}
	return paradigm.RandomFaultPlan(fs.randSeed, paradigm.FaultRandOptions{
		Procs: procs, MakespanHint: hint, ProcFails: 1, MsgDelays: 1,
	})
}
