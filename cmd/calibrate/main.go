// Command calibrate runs the training-sets calibration of Section 4 on
// the simulated CM-5 and prints Tables 1-2 and the Figure 3/5
// actual-versus-predicted series.
package main

import (
	"fmt"
	"os"

	"paradigm/internal/experiments"
)

func main() {
	env, err := experiments.NewEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	for _, step := range []func(*experiments.Env) (fmt.Stringer, error){
		func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table1(e) },
		func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Fig3(e) },
		func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Table2(e) },
		func(e *experiments.Env) (fmt.Stringer, error) { return experiments.Fig5(e) },
	} {
		r, err := step(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Println(r)
	}
}
