// Command mdgbench studies how the allocation-and-scheduling machinery
// scales with MDG size: it generates layered synthetic MDGs, runs the
// convex allocator, the greedy heuristic and the PSA on each, and prints
// wall times and solution quality (experiment E13, parameterizable).
//
// Usage:
//
//	mdgbench -procs 32 -layers 8 -width 13 -seed 2026
//	mdgbench -procs 32 -multistart 4   # concurrent multi-start convex solve
//	mdgbench -sweep                    # the standard E13 sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"paradigm/internal/alloc"
	"paradigm/internal/experiments"
	"paradigm/internal/mdg"
	"paradigm/internal/sched"
)

func main() {
	var (
		procs  = flag.Int("procs", 32, "system size p")
		layers = flag.Int("layers", 6, "layer count of the synthetic MDG")
		width  = flag.Int("width", 7, "nodes per layer")
		fanIn  = flag.Int("fanin", 3, "max fan-in per node")
		bytes  = flag.Int("bytes", 32768, "transfer size per edge")
		seed   = flag.Int64("seed", 2026, "generator seed")
		starts = flag.Int("multistart", 0, "extra deterministic start points for the convex solve (0 = single midpoint start)")
		sweep  = flag.Bool("sweep", false, "run the standard E13 size sweep instead")
	)
	flag.Parse()
	if err := run(*procs, *layers, *width, *fanIn, *bytes, *seed, *starts, *sweep); err != nil {
		fmt.Fprintln(os.Stderr, "mdgbench:", err)
		os.Exit(1)
	}
}

func run(procs, layers, width, fanIn, bytes int, seed int64, starts int, sweep bool) error {
	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	if sweep {
		r, err := experiments.Scalability(env)
		if err != nil {
			return err
		}
		fmt.Print(r)
		return nil
	}

	g, err := mdg.RandomLayered(seed, layers, width, fanIn, bytes)
	if err != nil {
		return err
	}
	metrics, err := g.ComputeMetrics()
	if err != nil {
		return err
	}
	fmt.Printf("MDG: %s\n\n", metrics)
	model := env.Cal.Model()

	t0 := time.Now()
	conv, err := alloc.Solve(g, model, procs, alloc.Options{MultiStart: starts})
	if err != nil {
		return err
	}
	label := "convex allocation"
	if starts > 1 {
		label = fmt.Sprintf("convex (%d starts)", starts)
	}
	fmt.Printf("%-18s: Phi = %.6f s in %v (%d objective evals, %d iters)\n",
		label, conv.Phi, time.Since(t0).Round(time.Millisecond), conv.Solver.Evals, conv.Solver.Iters)

	t0 = time.Now()
	heur, err := alloc.SolveHeuristic(g, model, procs)
	if err != nil {
		return err
	}
	fmt.Printf("greedy heuristic  : Phi = %.6f s in %v (+%.1f%% vs convex)\n",
		heur.Phi, time.Since(t0).Round(time.Millisecond), 100*(heur.Phi-conv.Phi)/conv.Phi)

	t0 = time.Now()
	s, err := sched.Run(g, model, conv.P, procs, sched.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("PSA schedule      : T_psa = %.6f s in %v (PB = %d, deviation %+.1f%%)\n",
		s.Makespan, time.Since(t0).Round(time.Microsecond), s.PB,
		100*(s.Makespan-conv.Phi)/conv.Phi)
	fmt.Printf("utilization       : %.1f%%\n", 100*s.Utilization())
	return nil
}
