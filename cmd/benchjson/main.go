// Command benchjson turns `go test -bench -benchmem` text output into the
// benchmark-trajectory JSON committed as BENCH_PR<N>.json: a baseline
// run, a current run, and per-benchmark deltas (ns/op and allocs/op).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -benchtime=1x > current.txt
//	benchjson -baseline baseline.txt -current current.txt \
//	    -label "PR 1: worker-pool fan-out + allocation fast path" \
//	    -o BENCH_PR1.json
//
// With no -baseline the JSON carries only the current run (the first
// point of a trajectory). Inputs are plain benchmark output files; the
// tool never runs the benchmarks itself, so the recorded numbers are
// exactly what the measurement run printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"paradigm/internal/benchparse"
)

type trajectory struct {
	Label    string              `json:"label,omitempty"`
	Baseline []benchparse.Result `json:"baseline,omitempty"`
	Current  []benchparse.Result `json:"current"`
	Deltas   []benchparse.Delta  `json:"deltas,omitempty"`
}

func parseFile(path string) ([]benchparse.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rs, err := benchparse.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return rs, nil
}

func run(baselinePath, currentPath, label, outPath string) error {
	if currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	t := trajectory{Label: label}
	var err error
	if t.Current, err = parseFile(currentPath); err != nil {
		return err
	}
	if baselinePath != "" {
		if t.Baseline, err = parseFile(baselinePath); err != nil {
			return err
		}
		t.Deltas = benchparse.Diff(t.Baseline, t.Current)
	}
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if outPath == "" || outPath == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(outPath, buf, 0o644)
}

func main() {
	baseline := flag.String("baseline", "", "baseline `file` of go test -bench output (optional)")
	current := flag.String("current", "", "current `file` of go test -bench output (required)")
	label := flag.String("label", "", "free-form label recorded in the JSON")
	out := flag.String("o", "-", "output `file` (default stdout)")
	flag.Parse()
	if err := run(*baseline, *current, *label, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
