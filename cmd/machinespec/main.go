// Command machinespec maintains the machine-spec database: list the
// built-in machines, dump one as canonical JSON, validate spec files,
// or export the whole database to a directory (how testdata/machines/
// is generated).
//
//	machinespec -list
//	machinespec -dump cm5-hetero8
//	machinespec -check testdata/machines/*.json
//	machinespec -export-dir testdata/machines
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"paradigm/internal/machine"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the built-in machine names")
		dump      = flag.String("dump", "", "print a built-in machine's canonical spec JSON")
		check     = flag.Bool("check", false, "validate the spec files given as arguments")
		exportDir = flag.String("export-dir", "", "write every built-in spec to this directory as <name>.json")
	)
	flag.Parse()
	if err := run(*list, *dump, *check, *exportDir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "machinespec:", err)
		os.Exit(1)
	}
}

func run(list bool, dump string, check bool, exportDir string, args []string) error {
	switch {
	case list:
		for _, name := range machine.BuiltinNames() {
			s, _ := machine.Builtin(name)
			fmt.Printf("%-16s %s, p=%d, hetero=%v\n", name, s.Name, s.Procs, len(s.Speeds) > 0)
		}
		return nil

	case dump != "":
		s, ok := machine.Builtin(dump)
		if !ok {
			return fmt.Errorf("no built-in machine %q", dump)
		}
		data, err := s.Canonical()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err

	case check:
		if len(args) == 0 {
			return fmt.Errorf("-check needs spec file arguments")
		}
		for _, path := range args {
			s, err := machine.LoadSpec(path)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			if _, err := machine.FromSpec(s); err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			fmt.Printf("%s: ok (%s, p=%d)\n", path, s.Name, s.Procs)
		}
		return nil

	case exportDir != "":
		if err := os.MkdirAll(exportDir, 0o755); err != nil {
			return err
		}
		for _, name := range machine.BuiltinNames() {
			s, _ := machine.Builtin(name)
			data, err := s.Canonical()
			if err != nil {
				return err
			}
			path := filepath.Join(exportDir, name+".json")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
		return nil
	}
	return fmt.Errorf("one of -list, -dump, -check or -export-dir is required (see -h)")
}
