// Command experiments runs every paper experiment (tables, figures,
// ablations, extensions) on the simulated CM-5.
//
// Output modes:
//
//	experiments              # paper-format text, every artifact in order
//	experiments -json        # machine-readable full report
//	experiments -markdown    # live paper-vs-measured markdown report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"paradigm/internal/experiments"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the machine-readable report as JSON")
	asMarkdown := flag.Bool("markdown", false, "emit the live paper-vs-measured markdown report")
	flag.Parse()

	env, err := experiments.NewEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibration failed:", err)
		os.Exit(1)
	}
	switch {
	case *asJSON, *asMarkdown:
		rep, err := experiments.FullReport(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiment failed:", err)
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintln(os.Stderr, "encode failed:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Print(rep.Markdown())
	default:
		out, err := experiments.All(env)
		fmt.Print(out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiment failed:", err)
			os.Exit(1)
		}
	}
}
