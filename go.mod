module paradigm

go 1.22
