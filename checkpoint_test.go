// Chaos harness for the write-ahead checkpoint log: runs are killed at
// randomized commit points (in-process aborts and real SIGKILLs), then
// resumed from the WAL, and the resumed result must match an
// uninterrupted reference byte for byte — the schedule rendering, the
// allocation, the simulated traffic, and every gathered array. The
// resumed trace must also satisfy the run oracle, and a damaged or
// mismatched log must be refused, never resumed silently.
package paradigm

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"testing"

	"paradigm/internal/obs"
	"paradigm/internal/oracle"
)

// buildProgram constructs one of the two paper benchmarks by name.
func buildProgram(t testing.TB, cal *Calibration, name string) *Program {
	t.Helper()
	var (
		p   *Program
		err error
	)
	switch name {
	case "cmm32":
		p, err = ComplexMatMul(32, cal)
	case "strassen16":
		p, err = Strassen(16, cal)
	default:
		t.Fatalf("unknown test program %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// gatherAll collects every program array from a finished run, in
// deterministic name order.
func gatherAll(t testing.TB, p *Program, res *Result) map[string]*Matrix {
	t.Helper()
	names := make([]string, 0, len(p.Arrays))
	for n := range p.Arrays {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(map[string]*Matrix, len(names))
	for _, n := range names {
		m, err := res.Sim.Gather(n)
		if err != nil {
			t.Fatalf("gather %s: %v", n, err)
		}
		out[n] = m
	}
	return out
}

// requireIdenticalRuns asserts that a resumed run reproduced the
// reference bit for bit: schedule rendering, allocation vector,
// makespans, message accounting, and every array element.
func requireIdenticalRuns(t *testing.T, name string, procs int, p *Program, ref, got *Result) {
	t.Helper()
	if a, b := formatSchedule(name, procs, p, ref.Sched), formatSchedule(name, procs, p, got.Sched); a != b {
		t.Fatalf("resumed schedule differs from reference:\n--- reference\n%s--- resumed\n%s", a, b)
	}
	for i := range ref.Alloc.P {
		if ref.Alloc.P[i] != got.Alloc.P[i] {
			t.Fatalf("allocation differs at node %d: %v vs %v", i, ref.Alloc.P[i], got.Alloc.P[i])
		}
	}
	if ref.Actual != got.Actual || ref.Predicted != got.Predicted {
		t.Fatalf("makespans differ: actual %v vs %v, predicted %v vs %v",
			ref.Actual, got.Actual, ref.Predicted, got.Predicted)
	}
	if ref.Sim.Messages != got.Sim.Messages || ref.Sim.NetworkBytes != got.Sim.NetworkBytes {
		t.Fatalf("traffic differs: %d/%d messages, %d/%d bytes",
			ref.Sim.Messages, got.Sim.Messages, ref.Sim.NetworkBytes, got.Sim.NetworkBytes)
	}
	if a, b := ref.Digest(), got.Digest(); a != b {
		t.Fatalf("result digests differ: %s vs %s", a, b)
	}
	refArrays, gotArrays := gatherAll(t, p, ref), gatherAll(t, p, got)
	for name, rm := range refArrays {
		gm := gotArrays[name]
		if rm.Rows != gm.Rows || rm.Cols != gm.Cols {
			t.Fatalf("array %s shape differs", name)
		}
		for i := range rm.Data {
			if rm.Data[i] != gm.Data[i] {
				t.Fatalf("array %s differs at element %d: %v vs %v", name, i, rm.Data[i], gm.Data[i])
			}
		}
	}
}

// TestKillAndResumeBitIdentical aborts the pipeline after its k-th
// durable commit (the OnCommit hook cancels the context the moment the
// record hits disk — the in-process analogue of a kill) and resumes
// from the WAL. For both benchmarks at every paper system size and
// every early kill point, the resumed run must be bit-identical to an
// uninterrupted reference and its trace must satisfy the run oracle.
func TestKillAndResumeBitIdentical(t *testing.T) {
	cal := testCal(t)
	m := NewCM5(64)
	for _, name := range []string{"cmm32", "strassen16"} {
		p := buildProgram(t, cal, name)
		for _, procs := range []int{4, 16, 64} {
			ref, err := RunContext(context.Background(), p, m, cal, procs)
			if err != nil {
				t.Fatalf("%s p=%d reference: %v", name, procs, err)
			}
			// Commit order: meta, alloc, sched, codegen, done.
			for kill := 1; kill <= 3; kill++ {
				t.Run(fmt.Sprintf("%s-p%d-kill%d", name, procs, kill), func(t *testing.T) {
					path := filepath.Join(t.TempDir(), "run.wal")
					cp, err := OpenCheckpoint(path)
					if err != nil {
						t.Fatal(err)
					}
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					commits := 0
					cp.OnCommit(func(string, int) {
						commits++
						if commits == kill {
							cancel()
						}
					})
					if _, err := RunContext(ctx, p, m, cal, procs, WithCheckpoint(cp)); !errors.Is(err, context.Canceled) {
						t.Fatalf("aborted run = %v, want context.Canceled", err)
					}
					if commits != kill {
						t.Fatalf("aborted run committed %d records past the kill point %d", commits, kill)
					}

					re, err := LoadCheckpoint(path)
					if err != nil {
						t.Fatal(err)
					}
					tr := &oracle.Trace{}
					rec := NewEventRecorder()
					got, err := RunContext(context.Background(), p, m, cal, procs,
						WithCheckpoint(re), WithObserver(MultiObserver(tr, rec)))
					if err != nil {
						t.Fatalf("resume: %v", err)
					}
					requireIdenticalRuns(t, name, procs, p, ref, got)
					if err := oracle.CheckRun(p.G, tr, got.Sim); err != nil {
						t.Fatalf("oracle rejects resumed trace: %v", err)
					}
					// Stages committed before the kill (beyond meta) must be
					// restored, not recomputed: one Resume event each.
					resumes := 0
					for _, e := range rec.Events() {
						if _, ok := e.(obs.Resume); ok {
							resumes++
						}
					}
					if want := kill - 1; resumes != want {
						t.Fatalf("resumed run emitted %d Resume events, want %d", resumes, want)
					}
				})
			}
		}
	}
}

// ckptChildEnv marks the re-exec'ed child of the SIGKILL chaos test.
const ckptChildEnv = "PARADIGM_CKPT_CHILD"

// TestCkptChildProcess is the subprocess body of the SIGKILL test: it
// runs the checkpointed pipeline and kills its own process — a real,
// unhandleable SIGKILL — from the commit hook. It only runs when
// re-exec'ed by TestKillMinus9AndResume.
func TestCkptChildProcess(t *testing.T) {
	if os.Getenv(ckptChildEnv) != "1" {
		t.Skip("subprocess body; driven by TestKillMinus9AndResume")
	}
	name := os.Getenv("PARADIGM_CKPT_PROGRAM")
	killAfter, err := strconv.Atoi(os.Getenv("PARADIGM_CKPT_KILL_AFTER"))
	if err != nil {
		t.Fatal(err)
	}
	path := os.Getenv("PARADIGM_CKPT_WAL")
	cal := testCal(t)
	p := buildProgram(t, cal, name)
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	commits := 0
	cp.OnCommit(func(string, int) {
		commits++
		if commits == killAfter {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
	})
	_, err = RunContext(context.Background(), p, NewCM5(64), cal, 8, WithCheckpoint(cp))
	t.Fatalf("child survived its own SIGKILL: err=%v", err)
}

// TestKillMinus9AndResume re-execs the test binary, lets the child
// checkpoint a real run and SIGKILL itself mid-pipeline, then resumes
// from the surviving WAL in this process and requires a bit-identical,
// oracle-clean result.
func TestKillMinus9AndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	cal := testCal(t)
	m := NewCM5(64)
	cases := []struct {
		program   string
		killAfter int
	}{
		{"cmm32", 2},      // dies right after the alloc commit
		{"strassen16", 3}, // dies right after the sched commit
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-kill%d", tc.program, tc.killAfter), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.wal")
			cmd := exec.Command(os.Args[0], "-test.run=^TestCkptChildProcess$", "-test.v")
			cmd.Env = append(os.Environ(),
				ckptChildEnv+"=1",
				"PARADIGM_CKPT_PROGRAM="+tc.program,
				"PARADIGM_CKPT_KILL_AFTER="+strconv.Itoa(tc.killAfter),
				"PARADIGM_CKPT_WAL="+path,
			)
			out, err := cmd.CombinedOutput()
			var exit *exec.ExitError
			if !errors.As(err, &exit) {
				t.Fatalf("child did not die: err=%v\n%s", err, out)
			}
			status, ok := exit.Sys().(syscall.WaitStatus)
			if !ok || !status.Signaled() || status.Signal() != syscall.SIGKILL {
				t.Fatalf("child exit = %v, want death by SIGKILL\n%s", err, out)
			}

			re, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatalf("WAL unreadable after SIGKILL: %v", err)
			}
			if got := len(re.Stages()); got < tc.killAfter {
				t.Fatalf("WAL has %d stages, want >= %d: %v", got, tc.killAfter, re.Stages())
			}
			p := buildProgram(t, cal, tc.program)
			ref, err := RunContext(context.Background(), p, m, cal, 8)
			if err != nil {
				t.Fatal(err)
			}
			tr := &oracle.Trace{}
			got, err := RunContext(context.Background(), p, m, cal, 8,
				WithCheckpoint(re), WithObserver(tr))
			if err != nil {
				t.Fatalf("resume after SIGKILL: %v", err)
			}
			requireIdenticalRuns(t, tc.program, 8, p, ref, got)
			if err := oracle.CheckRun(p.G, tr, got.Sim); err != nil {
				t.Fatalf("oracle rejects resumed trace: %v", err)
			}
		})
	}
}

// A damaged WAL — truncated or bit-flipped — must fail with the typed
// corruption sentinel at open time, from both strict and lenient
// entry points. A silent fresh start over a damaged log is forbidden.
func TestCorruptWALRefused(t *testing.T) {
	cal := testCal(t)
	p := buildProgram(t, cal, "cmm32")
	dir := t.TempDir()
	path := filepath.Join(dir, "run.wal")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunContext(context.Background(), p, NewCM5(64), cal, 4, WithCheckpoint(cp)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	truncated := filepath.Join(dir, "truncated.wal")
	if err := os.WriteFile(truncated, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flipped.wal")
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x20
	if err := os.WriteFile(flipped, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, damaged := range []string{truncated, flipped} {
		if _, err := LoadCheckpoint(damaged); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("LoadCheckpoint(%s) = %v, want ErrCheckpointCorrupt", filepath.Base(damaged), err)
		}
		if _, err := OpenCheckpoint(damaged); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("OpenCheckpoint(%s) = %v, want ErrCheckpointCorrupt", filepath.Base(damaged), err)
		}
	}
}

// A valid WAL replayed against a different job (other program, other
// system size) must be refused with the mismatch sentinel.
func TestMismatchedWALRefused(t *testing.T) {
	cal := testCal(t)
	cmm := buildProgram(t, cal, "cmm32")
	strassen := buildProgram(t, cal, "strassen16")
	m := NewCM5(64)
	path := filepath.Join(t.TempDir(), "run.wal")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunContext(context.Background(), cmm, m, cal, 8, WithCheckpoint(cp)); err != nil {
		t.Fatal(err)
	}

	re, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunContext(context.Background(), strassen, m, cal, 8, WithCheckpoint(re)); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("other program on cmm WAL = %v, want ErrCheckpointMismatch", err)
	}
	re, err = LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunContext(context.Background(), cmm, m, cal, 16, WithCheckpoint(re)); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("other system size on p=8 WAL = %v, want ErrCheckpointMismatch", err)
	}
}

// The calibration fit checkpoints and restores: a resumed calibration
// is restored from the WAL (one Resume event) and drives the rest of
// the pipeline to a bit-identical result.
func TestCalibrationCheckpointRoundTrip(t *testing.T) {
	m := NewCM5(64)
	path := filepath.Join(t.TempDir(), "run.wal")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	cal1, err := CalibrateContext(context.Background(), m, WithCheckpoint(cp))
	if err != nil {
		t.Fatal(err)
	}

	re, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewEventRecorder()
	cal2, err := CalibrateContext(context.Background(), m, WithCheckpoint(re), WithObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	resumed := false
	for _, e := range rec.Events() {
		if r, ok := e.(obs.Resume); ok && r.Stage == "calibrate" {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("second calibration was recomputed, not restored")
	}

	p1, err := ComplexMatMul(32, cal1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ComplexMatMul(32, cal2)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunContext(context.Background(), p1, m, cal1, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunContext(context.Background(), p2, m, cal2, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalRuns(t, "cmm32", 8, p1, r1, r2)
}

// Checkpointed recovery: a faulted run that replans mid-flight commits
// its salvage state, and a resume replays the same recovery, validates
// the salvage record bit for bit, and lands on the identical result.
func TestCheckpointedRecoverySalvage(t *testing.T) {
	cal := testCal(t)
	p := buildProgram(t, cal, "cmm32")
	m := NewCM5(8)
	hint := cleanMakespan(t, p, m, cal, 8)

	for seed := uint64(1); seed <= 8; seed++ {
		plan, err := RandomFaultPlan(seed, FaultRandOptions{
			Procs: 8, MakespanHint: hint, ProcFails: 1, MsgDelays: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), fmt.Sprintf("run-%d.wal", seed))
		cp, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := RunContext(context.Background(), p, m, cal, 8,
			WithFaultPlan(plan), WithRecovery(2), WithCheckpoint(cp))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !ref.Recovered {
			continue
		}
		salvaged := false
		for _, s := range cp.Stages() {
			if s == "salvage-1" {
				salvaged = true
			}
		}
		if !salvaged {
			t.Fatalf("seed %d: recovered run committed no salvage stage: %v", seed, cp.Stages())
		}

		re, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		rec := NewEventRecorder()
		got, err := RunContext(context.Background(), p, m, cal, 8,
			WithFaultPlan(plan), WithRecovery(2), WithCheckpoint(re), WithObserver(rec))
		if err != nil {
			t.Fatalf("seed %d resume: %v", seed, err)
		}
		mustVerifyExact(t, p, got)
		requireIdenticalRuns(t, "cmm32", 8, p, ref, got)
		wantResumes := map[string]bool{"alloc": false, "sched": false, "codegen": false, "salvage-1": false, "done": false}
		for _, e := range rec.Events() {
			if r, ok := e.(obs.Resume); ok {
				if _, tracked := wantResumes[r.Stage]; tracked {
					wantResumes[r.Stage] = true
				}
			}
		}
		for stage, seen := range wantResumes {
			if !seen {
				t.Fatalf("seed %d: resumed run recomputed stage %q instead of restoring/validating it", seed, stage)
			}
		}
		return
	}
	t.Fatal("no seed exercised the recovery path")
}
