// The PR 7 cross-backend gate: the three machine-model backends —
// trained (training-sets regression), analytical (closed-form roofline)
// and file-loaded (JSON spec) — must all produce allocations the
// verification oracle accepts, must agree with each other to within a
// bounded Φ ratio on the paper's programs and a population of generated
// MDGs, and must agree exactly where the mathematics says they are the
// same surface (an unpinned file spec is estimated analytically). The
// committed spec database in testdata/machines/ is linted against the
// built-in database, and a heterogeneous spec runs the whole
// allocate → schedule → simulate pipeline under the run oracle.
package paradigm

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"paradigm/internal/alloc"
	"paradigm/internal/machine"
	"paradigm/internal/mdg"
	"paradigm/internal/oracle"
)

// backendTriple builds the three backends for the same CM-5 profile:
// the trained one from the shared test calibration, the analytical and
// file-loaded ones straight from the constants.
func backendTriple(t *testing.T) (trained, analytical, file MachineBackend) {
	t.Helper()
	trained = NewTrainedMachine(testCal(t))
	a, err := NewAnalyticalMachine(NewCM5(64))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ResolveMachine("cm5")
	if err != nil {
		t.Fatal(err)
	}
	return trained, a, f
}

// phiRatioInBounds fails unless got/ref lies in [1/limit, limit].
func phiRatioInBounds(t *testing.T, label string, got, ref, limit float64) {
	t.Helper()
	if ref <= 0 || got <= 0 {
		t.Fatalf("%s: non-positive Φ values %v vs %v", label, got, ref)
	}
	if r := got / ref; r > limit || r < 1/limit {
		t.Errorf("%s: Φ ratio %v outside [%v, %v] (got %v, ref %v)",
			label, r, 1/limit, limit, got, ref)
	}
}

// TestBackendDifferentialOnGeneratedMDGs holds the node parameters
// fixed (the seeded generator) and varies only the transfer surface:
// every backend's model must yield an oracle-accepted allocation, the
// analytical surface must track the trained regression to within a
// factor of three in Φ, and the unpinned file backend must reproduce
// the analytical allocation exactly.
func TestBackendDifferentialOnGeneratedMDGs(t *testing.T) {
	trained, analytical, file := backendTriple(t)
	backends := []MachineBackend{trained, analytical, file}
	const procs = 16
	for seed := uint64(1); seed <= 50; seed++ {
		g := oracle.RandomGraph(seed, oracle.GenOptions{})
		results := make([]Allocation, len(backends))
		for i, b := range backends {
			label := fmt.Sprintf("seed %d, %s backend", seed, b.Kind())
			model := Model{Transfer: b.Transfer()}
			res, err := alloc.Solve(g, model, procs, alloc.Options{})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := oracle.CheckAllocation(g, model, procs, res, oracle.Options{}); err != nil {
				t.Errorf("%s: oracle rejected allocation: %v", label, err)
			}
			results[i] = res
		}
		phiRatioInBounds(t, fmt.Sprintf("seed %d analytical vs trained", seed),
			results[1].Phi, results[0].Phi, 3)
		sameAlloc(t, fmt.Sprintf("seed %d file vs analytical", seed), results[2], results[1])
	}
}

// TestBackendDifferentialOnPrograms runs the comparison end to end on
// the paper's two real programs: each backend supplies both the loop
// parameters (program build) and the transfer surface (allocation), so
// the Φ ratio bounds the whole estimation stack, not just one surface.
func TestBackendDifferentialOnPrograms(t *testing.T) {
	trained, analytical, file := backendTriple(t)
	backends := []MachineBackend{trained, analytical, file}
	builders := []struct {
		name  string
		build func(src LoopSource) (*Program, error)
	}{
		{"cmm", func(src LoopSource) (*Program, error) { return ComplexMatMul(32, src) }},
		{"strassen", func(src LoopSource) (*Program, error) { return Strassen(32, src) }},
	}
	const procs = 16
	for _, bld := range builders {
		graphs := make([]*mdg.Graph, len(backends))
		results := make([]Allocation, len(backends))
		for i, b := range backends {
			label := fmt.Sprintf("%s, %s backend", bld.name, b.Kind())
			p, err := bld.build(b)
			if err != nil {
				t.Fatalf("%s: build: %v", label, err)
			}
			graphs[i] = p.G
			model := Model{Transfer: b.Transfer()}
			res, err := alloc.Solve(p.G, model, procs, alloc.Options{})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := oracle.CheckAllocation(p.G, model, procs, res, oracle.Options{}); err != nil {
				t.Errorf("%s: oracle rejected allocation: %v", label, err)
			}
			results[i] = res
		}
		// The analytical loop estimates sit within a factor of two of
		// the trained fits and the transfer surfaces within a factor of
		// three, so the end-to-end Φ must stay within a factor of four.
		phiRatioInBounds(t, bld.name+" analytical vs trained", results[1].Phi, results[0].Phi, 4)
		// An unpinned file spec is priced analytically: identical loop
		// parameters, identical MDG, identical allocation.
		ha, _, err := graphs[1].CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		hf, _, err := graphs[2].CanonicalHash()
		if err != nil {
			t.Fatal(err)
		}
		if ha != hf {
			t.Errorf("%s: file and analytical backends built different MDGs", bld.name)
		}
		sameAlloc(t, bld.name+" file vs analytical", results[2], results[1])
	}
}

// TestTrainedBackendMatchesPositionalPipeline pins the refactor's core
// promise: driving the pipeline through the Backend interface with the
// trained implementation is byte-identical to the historical positional
// Machine + Calibration form.
func TestTrainedBackendMatchesPositionalPipeline(t *testing.T) {
	cal := testCal(t)
	const procs = 8

	p1, err := ComplexMatMul(24, cal)
	if err != nil {
		t.Fatal(err)
	}
	positional, err := Run(p1, NewCM5(64), cal, procs)
	if err != nil {
		t.Fatal(err)
	}

	b := NewTrainedMachine(cal)
	p2, err := ComplexMatMul(24, b)
	if err != nil {
		t.Fatal(err)
	}
	viaBackend, err := RunOn(p2, b, procs)
	if err != nil {
		t.Fatal(err)
	}

	sameAlloc(t, "trained backend vs positional", viaBackend.Alloc, positional.Alloc)
	if viaBackend.Predicted != positional.Predicted || viaBackend.Actual != positional.Actual {
		t.Errorf("makespans drifted: predicted %v vs %v, actual %v vs %v",
			viaBackend.Predicted, positional.Predicted, viaBackend.Actual, positional.Actual)
	}
}

// TestHeterogeneousMachineEndToEnd runs the committed heterogeneous
// spec through the whole pipeline: the run oracle must accept the
// trace, the simulated arrays must match the sequential reference, and
// the per-processor speed table must be observable in the makespan
// (a homogeneous CM-5 of the same size finishes at a different time).
func TestHeterogeneousMachineEndToEnd(t *testing.T) {
	hetero, err := ResolveMachine("cm5-hetero8")
	if err != nil {
		t.Fatal(err)
	}
	if !hetero.SimParams().Heterogeneous() {
		t.Fatal("cm5-hetero8 spec lost its speed table")
	}

	p, err := ComplexMatMul(16, hetero)
	if err != nil {
		t.Fatal(err)
	}
	tr := &oracle.Trace{}
	res, err := RunOnContext(context.Background(), p, hetero, 8, WithObserver(tr))
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.CheckRun(p.G, tr, res.Sim); err != nil {
		t.Errorf("run oracle rejected the heterogeneous run: %v", err)
	}
	dev, err := Verify(p, res.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 1e-9 {
		t.Errorf("heterogeneous run deviates from sequential reference by %v", dev)
	}

	homo, err := ResolveMachine("cm5")
	if err != nil {
		t.Fatal(err)
	}
	ph, err := ComplexMatMul(16, homo)
	if err != nil {
		t.Fatal(err)
	}
	homoRes, err := RunOn(ph, homo, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Actual == homoRes.Actual {
		t.Errorf("speed table invisible: heterogeneous and homogeneous runs both finish at %v", res.Actual)
	}
}

// TestCommittedMachineSpecsLint keeps testdata/machines/ and the
// built-in database in lockstep: one canonical JSON file per builtin,
// no strays, every file loading cleanly, matching its builtin's
// parameters, and byte-equal to its own canonical re-encoding.
func TestCommittedMachineSpecsLint(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "machines", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	committed := map[string]string{}
	for _, path := range paths {
		committed[filepath.Base(path)] = path
	}
	for _, name := range MachineNames() {
		path, ok := committed[name+".json"]
		if !ok {
			t.Errorf("builtin %q has no committed spec in testdata/machines/", name)
			continue
		}
		delete(committed, name+".json")

		spec, err := LoadMachineSpec(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, err := MachineFromSpec(spec); err != nil {
			t.Errorf("%s: FromSpec: %v", path, err)
		}
		builtin, _ := machine.Builtin(name)
		if !spec.Params().Equal(builtin.Params()) {
			t.Errorf("%s: committed spec diverged from the built-in database", path)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := spec.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(canon) {
			t.Errorf("%s: file is not in canonical form (run machinespec -export-dir testdata/machines)", path)
		}
	}
	for base := range committed {
		t.Errorf("testdata/machines/%s names no builtin machine", base)
	}
}
