// The pluggable machine-model surface: every way a caller can tell the
// pipeline what machine it is compiling for.
//
// A MachineBackend answers all three machine questions the pipeline
// asks — Amdahl loop parameters at program-build time, the transfer
// cost surface at allocate/schedule time, and ground-truth simulator
// constants at execute time. Three implementations ship:
//
//   - trained (NewTrainedMachine): the paper's training-sets
//     regression, wrapping a Calibration. Byte-identical to the
//     historical positional pipeline.
//   - analytical (NewAnalyticalMachine): a closed-form roofline
//     estimator derived directly from the machine constants — no
//     calibration run.
//   - file-loaded (ResolveMachine / MachineFromSpec): a JSON machine
//     spec, from the built-in database or a user file, estimated
//     analytically unless the spec pins an explicit transfer surface.
//
// WithMachine threads a backend through any pipeline entry point;
// RunOn is the one-call form:
//
//	b, err := paradigm.ResolveMachine("testdata/machines/cm5-hetero8.json")
//	res, err := paradigm.RunOn(prog, b, 8)
package paradigm

import (
	"context"

	"paradigm/internal/alloc"
	"paradigm/internal/errs"
	"paradigm/internal/machine"
)

// Machine-backend re-exports.
type (
	// MachineBackend is one machine model: everything the
	// allocate → schedule → simulate pipeline asks of a target machine.
	MachineBackend = machine.Backend
	// MachineKind names a backend implementation family ("trained",
	// "analytical", "file").
	MachineKind = machine.Kind
	// MachineSpec is the JSON machine description the file-loaded
	// backend consumes (see testdata/machines/*.json).
	MachineSpec = machine.Spec
	// MachineTopology describes a machine's interconnect family.
	MachineTopology = machine.Topology
	// LoopSource is the narrow processing-cost surface the program
	// builders consume: both *Calibration and every MachineBackend
	// satisfy it.
	LoopSource = machine.LoopSource
	// LoopShape is the cost-relevant geometry of one loop nest.
	LoopShape = machine.LoopShape
)

// Backend implementation families.
const (
	// MachineTrained is the training-sets regression of Section 4.
	MachineTrained = machine.KindTrained
	// MachineAnalytical is the closed-form roofline estimator.
	MachineAnalytical = machine.KindAnalytical
	// MachineFile is a JSON spec from the database or a user file.
	MachineFile = machine.KindFile
)

// Allocation-backend re-exports: the typed selector for
// AllocOptions.Backend.
type AllocBackend = alloc.Backend

const (
	// AllocAuto selects the default strategy (the racing annealed
	// multi-start).
	AllocAuto = alloc.BackendAuto
	// AllocAnneal is the racing annealed multi-start.
	AllocAnneal = alloc.BackendAnneal
	// AllocADMM is the consensus-ADMM decomposition.
	AllocADMM = alloc.BackendADMM
)

// Machine and backend sentinel errors.
var (
	// ErrUnknownBackend marks an AllocOptions.Backend value naming no
	// solve strategy, or a machine reference naming no builtin.
	ErrUnknownBackend = errs.ErrUnknownBackend
	// ErrBadMachineSpec marks a machine spec that fails validation
	// (malformed JSON, non-finite constants, table-length mismatches).
	ErrBadMachineSpec = errs.ErrBadMachineSpec
)

// ParseAllocBackend maps a CLI string ("auto", "anneal", "admm") to a
// typed allocation backend, failing with ErrUnknownBackend.
func ParseAllocBackend(s string) (AllocBackend, error) { return alloc.ParseBackend(s) }

// MachineNames lists the built-in machine database, sorted.
func MachineNames() []string { return machine.BuiltinNames() }

// ResolveMachine turns a machine reference into a file-loaded backend:
// a built-in database name first ("cm5", "paragon", "cm5-hetero8",
// "paragon-memcap8", case-insensitive), then a path to a JSON spec.
// Unknown names fail with ErrUnknownBackend; bad specs with
// ErrBadMachineSpec.
func ResolveMachine(ref string) (MachineBackend, error) {
	spec, err := machine.Resolve(ref)
	if err != nil {
		return nil, err
	}
	return machine.FromSpec(spec)
}

// LoadMachineSpec reads and validates one JSON machine spec file.
func LoadMachineSpec(path string) (*MachineSpec, error) { return machine.LoadSpec(path) }

// MachineFromSpec builds the file-loaded backend for a validated spec.
func MachineFromSpec(s *MachineSpec) (MachineBackend, error) { return machine.FromSpec(s) }

// MachineSpecOf exports a machine profile as a spec — the starting
// point for writing a custom machine file.
func MachineSpecOf(m Machine) *MachineSpec { return machine.SpecFromParams(m) }

// NewAnalyticalMachine wraps a machine profile in the closed-form
// roofline estimator: loop and transfer parameters derived directly
// from the constants, no calibration run.
func NewAnalyticalMachine(m Machine) (MachineBackend, error) { return machine.NewAnalytical(m) }

// NewTrainedMachine wraps a calibration in the Backend interface. The
// resulting backend prices loops and transfers exactly as the
// calibration does — the historical positional pipeline, behind the
// pluggable surface.
func NewTrainedMachine(cal *Calibration) MachineBackend { return cal.Backend() }

// TrainMachine calibrates a machine profile and returns the trained
// backend in one step: Calibrate followed by NewTrainedMachine.
func TrainMachine(m Machine) (MachineBackend, error) {
	cal, err := Calibrate(m)
	if err != nil {
		return nil, err
	}
	return cal.Backend(), nil
}

// WithMachine supplies the machine model for a pipeline call from a
// backend, overriding the positional Machine/Calibration arguments:
// the simulator runs on b.SimParams(), and allocation/scheduling use
// b.Transfer(). RunContext then accepts a nil Calibration.
func WithMachine(b MachineBackend) Option {
	return func(c *config) { c.mach = b }
}

// RunOn executes the full pipeline — allocate, schedule, generate MPMD
// code, simulate — for a program on a machine backend at the given
// system size. It is the positional form of RunOnContext.
func RunOn(p *Program, b MachineBackend, procs int) (*Result, error) {
	return RunOnContext(context.Background(), p, b, procs)
}

// RunOnContext executes the full pipeline on a machine backend with
// cancellation and options; it is RunContext with the machine model
// drawn entirely from b.
func RunOnContext(ctx context.Context, p *Program, b MachineBackend, procs int, opts ...Option) (*Result, error) {
	return RunContext(ctx, p, b.SimParams(), nil, procs, append(opts, WithMachine(b))...)
}
