package paradigm

import (
	"math"
	"testing"

	"paradigm/internal/dist"
	"paradigm/internal/kernels"
)

func testCal(t testing.TB) *Calibration {
	t.Helper()
	cal, err := Calibrate(NewCM5(64))
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestFacadeFullPipelineCMM(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(64)
	mixed, err := Run(p, m, cal, 16)
	if err != nil {
		t.Fatal(err)
	}
	spmd, err := RunSPMD(p, m, cal, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.Actual >= spmd.Actual {
		t.Fatalf("MPMD %v should beat SPMD %v", mixed.Actual, spmd.Actual)
	}
	worst, err := Verify(p, mixed.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-9 {
		t.Fatalf("numerical deviation %v", worst)
	}
	if mixed.Predicted <= 0 || math.Abs(mixed.Predicted-mixed.Actual) > 0.5*mixed.Actual {
		t.Fatalf("prediction %v vs actual %v diverged", mixed.Predicted, mixed.Actual)
	}
}

func TestFacadeBuilderRoundTrip(t *testing.T) {
	cal := testCal(t)
	b := NewProgramBuilder("custom")
	initK := kernels.Kernel{Op: kernels.OpInit, M: 8, N: 8,
		Init: func(i, j int) float64 { return float64(i ^ j) }}
	lpInit, err := cal.Loop("init8", initK)
	if err != nil {
		t.Fatal(err)
	}
	addK := kernels.Kernel{Op: kernels.OpAdd, M: 8, N: 8}
	lpAdd, err := cal.Loop("add8", addK)
	if err != nil {
		t.Fatal(err)
	}
	b.AddNode("src", NodeSpec{Kernel: initK, Output: "X", Axis: dist.ByRow}, lpInit)
	b.AddNode("dbl", NodeSpec{Kernel: addK, Inputs: []string{"X", "X"}, Output: "Y", Axis: dist.ByRow}, lpAdd)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, NewCM5(8), cal, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Sim.Gather("Y")
	if err != nil {
		t.Fatal(err)
	}
	if got.At(3, 5) != 2*float64(3^5) {
		t.Fatalf("Y[3,5] = %v", got.At(3, 5))
	}
}

func TestFacadeBounds(t *testing.T) {
	pb, factor, err := OptimalPB(64)
	if err != nil || pb < 1 || factor <= 1 {
		t.Fatalf("OptimalPB: %d %v %v", pb, factor, err)
	}
	t1, t2, t3, err := TheoremBounds(64, pb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t3-t1*t2) > 1e-9 {
		t.Fatalf("t3 %v != t1·t2 %v", t3, t1*t2)
	}
	if _, _, _, err := TheoremBounds(64, 100); err == nil {
		t.Fatal("want error for PB > p")
	}
}

func TestFacadeFigureOne(t *testing.T) {
	g := FigureOneMDG()
	ar, err := Allocate(g, Model{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(g, Model{}, ar.P, 4, ScheduleOptions{PB: 4})
	if err != nil {
		t.Fatal(err)
	}
	spmd, err := ScheduleSPMD(g, Model{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan >= spmd.Makespan {
		t.Fatalf("mixed %v should beat naive %v", s.Makespan, spmd.Makespan)
	}
}

func TestSpeedupHelper(t *testing.T) {
	if sp, err := Speedup(10, 2); err != nil || sp != 5 {
		t.Fatalf("Speedup = %v, %v", sp, err)
	}
	if _, err := Speedup(0, 1); err == nil {
		t.Fatal("want error")
	}
	if _, err := Speedup(1, 0); err == nil {
		t.Fatal("want error")
	}
}

func TestFacadeNewExports(t *testing.T) {
	cal := testCal(t)
	// Grid variant compiles and runs.
	pg, err := ComplexMatMulGrid(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(pg, NewCM5(16), cal, 16)
	if err != nil {
		t.Fatal(err)
	}
	if worst, err := Verify(pg, res.Sim); err != nil || worst > 1e-9 {
		t.Fatalf("grid CMM verification: %v %v", worst, err)
	}
	// Recursive Strassen depth 0 (single multiply).
	ps, err := StrassenRecursive(16, 0, cal)
	if err != nil {
		t.Fatal(err)
	}
	if ps.G.NumNodes() != 4 { // 2 inits + 1 mul + START dummy (mul is the sink)
		t.Fatalf("depth-0 nodes = %d", ps.G.NumNodes())
	}
	// Paragon profile is valid and distinct.
	par := NewParagon(32)
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
	if par.NetPerByte == 0 {
		t.Fatal("Paragon needs t_n > 0")
	}
	// Source compilation through the facade.
	src := "matrix A = init(8, 8, ones)\nmatrix B = A + A\n"
	pc, err := CompileSource("tiny", src, cal)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pc.ReferenceRun()
	if err != nil {
		t.Fatal(err)
	}
	if ref["B"].At(0, 0) != 2 {
		t.Fatalf("B[0,0] = %v", ref["B"].At(0, 0))
	}
}
