// Cluster-scope execution: the root glue between the shared-clock
// multi-job simulator (internal/cluster) and the per-job paper
// pipeline. The cluster loop is model-agnostic; this file supplies the
// Runner that executes each placed job through allocate → schedule →
// codegen → simulate with the partition-relative fault plan and the
// PR 3 recovery driver, plus the data digest that serves as the chaos
// gate's oracle.
//
// The digest deliberately covers *data only* — every output array's
// float64 bits in sorted-name order. Result.Digest() (checkpoint.go)
// identifies a whole run including allocation and recovery trail, so it
// legitimately differs between a faulted and a fault-free execution.
// The data digest does not: recovery is bit-exact (salvage restores
// blocks exactly, re-runs repeat the FP summation orders) and the
// simulated numerics are procs-invariant, so one fault-free reference
// digest is a valid oracle for any partition size, any router, any
// fault timing. That invariance is what "every completed job
// byte-identical to its fault-free run" means.
package paradigm

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"paradigm/internal/cluster"
	"paradigm/internal/fault"
)

// Cluster-layer re-exports.
type (
	// ClusterSpec describes one job in a cluster run; Payload must be
	// the job's *Program.
	ClusterSpec = cluster.Spec
	// ClusterOptions configures the shared-clock loop (pool size,
	// router, pool fault plan, detection latency, admission bound).
	ClusterOptions = cluster.Options
	// ClusterOutcome is the deterministic record of a cluster run.
	ClusterOutcome = cluster.Outcome
	// ClusterJobResult is one completed job's record.
	ClusterJobResult = cluster.JobResult
	// ClusterRunner executes one placed job; PipelineRunner is the
	// paper-pipeline implementation.
	ClusterRunner = cluster.Runner
)

// Router names for ClusterOptions.Router.
const (
	RouterRoundRobin  = cluster.RouterRoundRobin
	RouterLeastLoaded = cluster.RouterLeastLoaded
	RouterBestFit     = cluster.RouterBestFit
)

// PipelineRunner executes cluster jobs through the full paper pipeline
// on a machine profile resized to each partition. Safe for reuse across
// runs; the embedded caches (warm-start allocation, exact-replay only)
// make repeated placements of one program cheap without perturbing
// determinism.
type PipelineRunner struct {
	m          Machine
	cal        *Calibration
	recoverMax int
	cache      *AllocCache
}

// NewPipelineRunner returns a Runner executing jobs on partitions of m
// with up to recoverMax recovery attempts per job (<= 0 defaults to 3:
// a cluster runner without recovery would lose every faulted job).
func NewPipelineRunner(m Machine, cal *Calibration, recoverMax int) *PipelineRunner {
	if recoverMax <= 0 {
		recoverMax = 3
	}
	return &PipelineRunner{m: m, cal: cal, recoverMax: recoverMax, cache: NewAllocCache(128)}
}

// program extracts the job body.
func (r *PipelineRunner) program(spec ClusterSpec) (*Program, error) {
	p, ok := spec.Payload.(*Program)
	if !ok || p == nil {
		return nil, fmt.Errorf("paradigm: cluster job %q payload is %T, want *Program", spec.ID, spec.Payload)
	}
	return p, nil
}

// Run implements cluster.Runner: one full pipeline execution on a
// procs-processor partition under the translated fault plan.
func (r *PipelineRunner) Run(spec ClusterSpec, procs int, plan *fault.Plan) (cluster.RunOutcome, error) {
	p, err := r.program(spec)
	if err != nil {
		return cluster.RunOutcome{}, err
	}
	opts := []Option{WithAllocOptions(AllocOptions{Cache: r.cache, CacheExactOnly: true})}
	if plan != nil && !plan.Empty() {
		opts = append(opts, WithFaultPlan(plan), WithRecovery(r.recoverMax))
	}
	res, err := RunContext(context.Background(), p, r.m.WithProcs(procs), r.cal, procs, opts...)
	if err != nil {
		return cluster.RunOutcome{}, err
	}
	digest, err := DataDigest(p, res.Sim)
	if err != nil {
		return cluster.RunOutcome{}, err
	}
	// A recovered run's virtual duration spans the halted attempt plus
	// the re-run: the halt is diagnosed no earlier than the last death
	// that fired, so the latest plan fail time is the rebase point and
	// Actual is the re-run makespan on top of it.
	dur := res.Actual
	if res.Recovered && plan != nil {
		rebase := 0.0
		for _, f := range plan.ProcFails {
			if f.At > rebase {
				rebase = f.At
			}
		}
		dur = rebase + res.Actual
	}
	return cluster.RunOutcome{
		Duration: dur, Digest: digest,
		Recovered: res.Recovered, Attempts: res.RecoveryAttempts,
	}, nil
}

// Predict implements cluster.Runner: the convex program's objective Φ
// for the job at a partition size — the best-fit router's cost surface.
// Solve failures report NaN ("unknown"), which the router treats as
// no preference.
func (r *PipelineRunner) Predict(spec ClusterSpec, procs int) float64 {
	p, err := r.program(spec)
	if err != nil {
		return math.NaN()
	}
	ar, err := AllocateContext(context.Background(), p.G, r.cal.Model(), procs,
		WithAllocOptions(AllocOptions{Cache: r.cache, CacheExactOnly: true}))
	if err != nil {
		return math.NaN()
	}
	return ar.Phi
}

// RunCluster executes the shared-clock multi-job simulation: specs
// arrive over virtual time, are routed onto partitions of a
// o.Procs-processor pool, and survive the pool-scoped fault plan. When
// o.Runner is nil a PipelineRunner over m/cal is used.
func RunCluster(specs []ClusterSpec, m Machine, cal *Calibration, o ClusterOptions) (*ClusterOutcome, error) {
	if o.Runner == nil {
		o.Runner = NewPipelineRunner(m, cal, 0)
	}
	return cluster.Run(specs, o)
}

// ReplayCluster reruns a cluster simulation with counterfactual
// partition-size overrides per job ID — "what if this job had gotten 32
// processors instead of 16" as a full deterministic re-simulation.
func ReplayCluster(specs []ClusterSpec, m Machine, cal *Calibration, o ClusterOptions, overrides map[string]int) (*ClusterOutcome, error) {
	if o.Runner == nil {
		o.Runner = NewPipelineRunner(m, cal, 0)
	}
	return cluster.Replay(specs, o, overrides)
}

// DataDigest hashes every output array of a simulated run — float64
// bits, row-major, arrays in sorted name order. Because recovery is
// bit-exact and the simulated numerics are procs-invariant, the digest
// is a pure function of the program's data: it is identical across
// partition sizes, fault plans, and recovery paths, which makes the
// fault-free digest the byte-identity oracle for cluster chaos runs.
func DataDigest(p *Program, res *SimResult) (string, error) {
	names := make([]string, 0, len(p.Arrays))
	for name := range p.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	var buf [8]byte
	for _, name := range names {
		mat, err := res.Gather(name)
		if err != nil {
			return "", err
		}
		h.Write([]byte(name))
		binary.LittleEndian.PutUint64(buf[:], uint64(len(mat.Data)))
		h.Write(buf[:])
		for _, v := range mat.Data {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
