// Tests for the resilience surface: panic containment at the public
// boundary, cancellation of the long loops, stage budgets, bounded
// retry with deterministic backoff, and the allocation circuit breaker.
package paradigm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"paradigm/internal/obs"
	"paradigm/internal/resil"
)

// eventsOf filters a recorder's events down to one kind.
func eventsOf[T Event](rec *EventRecorder) []T {
	var out []T
	for _, e := range rec.Events() {
		if ev, ok := e.(T); ok {
			out = append(out, ev)
		}
	}
	return out
}

func TestGuardStageMapsPanicsToTypedErrors(t *testing.T) {
	trip := func(stage string, payload any) (err error) {
		defer guardStage(stage, &err)
		panic(payload)
	}
	err := trip("allocate", "costmodel: unknown transfer kind 99")
	if !errors.Is(err, ErrUnsupportedTransfer) {
		t.Fatalf("transfer-kind panic = %v, want ErrUnsupportedTransfer", err)
	}
	if !strings.Contains(err.Error(), "allocate stage") {
		t.Fatalf("error does not name the stage: %v", err)
	}
	err = trip("execute", "matrix: block [0:8,0:8] outside 4x4")
	if !errors.Is(err, ErrBadGraph) {
		t.Fatalf("matrix panic = %v, want ErrBadGraph", err)
	}
	// Non-string panic values must still be contained.
	err = trip("run", errors.New("boom"))
	if !errors.Is(err, ErrBadGraph) {
		t.Fatalf("error-valued panic = %v, want ErrBadGraph", err)
	}
}

// A hand-corrupted program — an array shape that disagrees with the
// kernel that writes it — panics deep inside the block store. The
// public boundary must contain it as a typed error naming the stage.
func TestPanicContainedOnCorruptProgram(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	model := cal.Model()
	ar, err := Allocate(p.G, model, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(p.G, model, ar.P, 8, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	arr := p.Arrays["Ar"]
	arr.Rows /= 2
	p.Arrays["Ar"] = arr

	if _, err := ExecuteContext(context.Background(), p, s, m); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("ExecuteContext on corrupted program = %v, want ErrBadGraph", err)
	} else if !strings.Contains(err.Error(), "panic in execute stage") {
		t.Fatalf("contained panic does not name the stage: %v", err)
	}
	if _, err := RunContext(context.Background(), p, m, cal, 8); !errors.Is(err, ErrBadGraph) {
		t.Fatalf("RunContext on corrupted program = %v, want ErrBadGraph", err)
	}
}

// A corrupted transfer kind must surface as ErrUnsupportedTransfer from
// every graph-consuming entry point — never as a crash.
func TestCorruptTransferKindIsTyped(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.G.Edges) == 0 || len(p.G.Edges[0].Transfers) == 0 {
		t.Fatal("test program has no transfers to corrupt")
	}
	p.G.Edges[0].Transfers[0].Kind = 99
	model := cal.Model()
	ctx := context.Background()
	if _, err := AllocateContext(ctx, p.G, model, 8); !errors.Is(err, ErrUnsupportedTransfer) {
		t.Fatalf("AllocateContext = %v, want ErrUnsupportedTransfer", err)
	}
	if _, err := RunContext(ctx, p, NewCM5(8), cal, 8); !errors.Is(err, ErrUnsupportedTransfer) {
		t.Fatalf("RunContext = %v, want ErrUnsupportedTransfer", err)
	}
}

// A pre-cancelled context must fail before the first simulated round:
// the codegen emission loop checks per node, the simulator per sweep.
func TestPreCancelledContextFailsFast(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	model := cal.Model()
	ar, err := Allocate(p.G, model, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSchedule(p.G, model, ar.P, 8, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	rec := NewEventRecorder()
	if _, err := ExecuteContext(ctx, p, s, NewCM5(8), WithObserver(rec)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecuteContext = %v, want context.Canceled", err)
	}
	if runs := eventsOf[obs.NodeRun](rec); len(runs) != 0 {
		t.Fatalf("cancelled execute still simulated %d node runs", len(runs))
	}
	if _, err := BuildScheduleContext(ctx, p.G, model, ar.P, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildScheduleContext = %v, want context.Canceled", err)
	}
	if _, err := RunContext(ctx, p, NewCM5(8), cal, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

// cancelOnRecovery cancels a context the moment the recovery driver
// announces its first salvage attempt, so the salvage/replan loop's own
// cancellation checks are what stop the run.
type cancelOnRecovery struct{ cancel context.CancelFunc }

func (c *cancelOnRecovery) Observe(e Event) {
	if _, ok := e.(obs.Recovery); ok {
		c.cancel()
	}
}

func TestRecoveryLoopHonoursCancellation(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	m := NewCM5(8)
	hint := cleanMakespan(t, p, m, cal, 8)
	for seed := uint64(1); seed <= 8; seed++ {
		plan, err := RandomFaultPlan(seed, FaultRandOptions{
			Procs: 8, MakespanHint: hint, ProcFails: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		obsrv := &cancelOnRecovery{cancel: cancel}
		_, err = RunContext(ctx, p, m, cal, 8,
			WithFaultPlan(plan), WithRecovery(2), WithObserver(obsrv))
		cancel()
		if ctx.Err() == nil {
			continue // fault never landed mid-run; no recovery started
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("seed %d: cancelled recovery = %v, want context.Canceled", seed, err)
		}
		return
	}
	t.Fatal("no seed exercised the recovery path")
}

func TestStageBudgetExpires(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	_, err = AllocateContext(context.Background(), p.G, cal.Model(), 8,
		WithStageBudgets(StageBudgets{Allocate: time.Nanosecond}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budgeted allocate = %v, want DeadlineExceeded", err)
	}
	if !strings.Contains(err.Error(), "allocate stage exceeded its 1ns budget") {
		t.Fatalf("budget error does not name the stage budget: %v", err)
	}
}

func TestRetryBackoffIsDeterministic(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	model := cal.Model()
	run := func() ([]time.Duration, []obs.Retry, error) {
		var slept []time.Duration
		rec := NewEventRecorder()
		policy := RetryPolicy{
			MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 7,
			Sleep: func(_ context.Context, d time.Duration) error {
				slept = append(slept, d)
				return nil
			},
		}
		_, err := AllocateContext(context.Background(), p.G, model, 8,
			WithStageBudgets(StageBudgets{Allocate: time.Nanosecond}),
			WithRetry(policy), WithObserver(rec))
		return slept, eventsOf[obs.Retry](rec), err
	}

	slept1, retries1, err1 := run()
	slept2, _, err2 := run()
	if err1 == nil || err2 == nil {
		t.Fatal("1ns allocation budget did not fail")
	}
	if !errors.Is(err1, context.DeadlineExceeded) || !strings.Contains(err1.Error(), "after 3 attempt(s)") {
		t.Fatalf("exhausted retry error = %v", err1)
	}
	if len(slept1) != 2 || len(retries1) != 2 {
		t.Fatalf("3 attempts should sleep twice and emit 2 Retry events, got %d/%d", len(slept1), len(retries1))
	}
	// The delays are exactly the policy's decorrelated-jitter sequence,
	// and a re-run reproduces them bit for bit.
	want := resil.NewBackoff(RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 7})
	for i, d := range slept1 {
		if w := want.Next(); d != w {
			t.Fatalf("delay %d = %v, want %v", i, d, w)
		}
		if retries1[i].Attempt != i+1 || retries1[i].DelaySeconds != d.Seconds() {
			t.Fatalf("Retry event %d = %+v, delay %v", i, retries1[i], d)
		}
	}
	for i := range slept1 {
		if slept1[i] != slept2[i] {
			t.Fatalf("backoff not deterministic: run1 %v, run2 %v", slept1, slept2)
		}
	}
}

// Repeated budget failures within one call trip the breaker, and the
// call degrades to the heuristic allocator instead of failing.
func TestBreakerTripsToHeuristic(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	model := cal.Model()
	br := NewBreaker(BreakerOptions{Threshold: 2, Cooldown: time.Hour})
	rec := NewEventRecorder()
	noSleep := func(context.Context, time.Duration) error { return nil }

	ar, err := AllocateContext(context.Background(), p.G, model, 8,
		WithStageBudgets(StageBudgets{Allocate: time.Nanosecond}),
		WithRetry(RetryPolicy{MaxAttempts: 2, Sleep: noSleep}),
		WithBreaker(br), WithObserver(rec))
	if err != nil {
		t.Fatalf("tripped-breaker call should degrade to the heuristic, got %v", err)
	}
	if len(ar.P) != p.G.NumNodes() {
		t.Fatalf("heuristic allocation has %d entries for %d nodes", len(ar.P), p.G.NumNodes())
	}
	if br.State() != resil.StateOpen {
		t.Fatalf("breaker state = %s, want open", br.State())
	}
	breakers := eventsOf[obs.Breaker](rec)
	if len(breakers) == 0 || breakers[0].State != resil.StateOpen {
		t.Fatalf("no open Breaker event recorded: %+v", breakers)
	}
	found := false
	for _, rp := range eventsOf[obs.Replan](rec) {
		if rp.Stage == "breaker-fallback" {
			found = true
		}
	}
	if !found {
		t.Fatal("heuristic fallback did not emit its Replan event")
	}

	// While open, the next call sheds load immediately: no budget, no
	// retries, straight to the heuristic.
	rec2 := NewEventRecorder()
	ar2, err := AllocateContext(context.Background(), p.G, model, 8,
		WithBreaker(br), WithObserver(rec2))
	if err != nil {
		t.Fatalf("open-breaker call = %v", err)
	}
	if len(eventsOf[obs.Retry](rec2)) != 0 {
		t.Fatal("open breaker still ran retries")
	}
	if len(ar2.P) != len(ar.P) {
		t.Fatal("shed call returned a different allocation shape")
	}
}

// Semantic failures are never retried and never fed to the breaker.
func TestInfeasibleNeverRetried(t *testing.T) {
	cal := testCal(t)
	p, err := ComplexMatMul(32, cal)
	if err != nil {
		t.Fatal(err)
	}
	br := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: time.Hour})
	rec := NewEventRecorder()
	_, err = AllocateContext(context.Background(), p.G, cal.Model(), 0,
		WithRetry(RetryPolicy{MaxAttempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}),
		WithBreaker(br), WithObserver(rec))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("procs=0 = %v, want ErrInfeasible", err)
	}
	if n := len(eventsOf[obs.Retry](rec)); n != 0 {
		t.Fatalf("infeasible problem was retried %d times", n)
	}
	if br.State() != resil.StateClosed {
		t.Fatalf("infeasible failure tripped the breaker to %s", br.State())
	}
}
