// Crash-safe checkpointing: the public face of internal/ckpt.
//
// WithCheckpoint attaches a write-ahead checkpoint log to a pipeline
// call. Each completed stage (calibration fit, allocation vector, PSA
// schedule, codegen program, recovery salvage) commits one CRC-checked
// record: the log file is created with an atomic rename and each commit
// appends the record, then publishes it by rewriting the header's
// commit pointer in place (crash-atomic under process death). A killed
// run re-invoked with the same log resumes from the last committed
// stage and — because every stage is deterministic — produces a
// bit-identical result, which the chaos tests verify with
// oracle.CheckRun on the resumed trace.
//
//	cp, err := paradigm.OpenCheckpoint("run.wal") // resumes if it exists
//	res, err := paradigm.RunContext(ctx, p, m, cal, 64,
//	    paradigm.WithCheckpoint(cp))
//
// The log is bound to one job: a meta record (program, system size,
// machine) is committed first and validated on resume, so replaying a
// log against a different job fails with ErrCheckpointMismatch instead
// of resuming silently. A damaged log (truncation, bit flip) fails with
// ErrCheckpointCorrupt at open time.
package paradigm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"paradigm/internal/ckpt"
	"paradigm/internal/obs"
)

// Checkpoint sentinels (see internal/ckpt).
var (
	// ErrCheckpointCorrupt marks a checkpoint log that fails structural
	// or CRC validation — it is refused, never resumed silently.
	ErrCheckpointCorrupt = ckpt.ErrCorrupt
	// ErrCheckpointVersion marks a log written by an incompatible
	// format version.
	ErrCheckpointVersion = ckpt.ErrVersion
	// ErrCheckpointMismatch marks a valid log that belongs to a
	// different job (program, machine, or system size).
	ErrCheckpointMismatch = ckpt.ErrMismatch
)

// Checkpoint is an open write-ahead checkpoint log. Use one Checkpoint
// per pipeline run; it is not safe for concurrent pipeline calls.
type Checkpoint struct{ log *ckpt.Log }

// CreateCheckpoint starts a fresh log at path, truncating any previous
// one — the "start over" entry point.
func CreateCheckpoint(path string) (*Checkpoint, error) {
	l, err := ckpt.Create(path)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{log: l}, nil
}

// OpenCheckpoint resumes the log at path if it exists or creates a
// fresh one — the "checkpoint this run, resuming a killed attempt"
// entry point.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	l, err := ckpt.Open(path)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{log: l}, nil
}

// LoadCheckpoint opens an existing log strictly: a missing or damaged
// file is an error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	l, err := ckpt.Load(path)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{log: l}, nil
}

// Path returns the log's file path.
func (cp *Checkpoint) Path() string { return cp.log.Path() }

// Stages lists the committed stage names in commit order.
func (cp *Checkpoint) Stages() []string { return cp.log.Stages() }

// OnCommit registers a hook invoked after each commit is durable on
// disk (the chaos tests kill the process from it).
func (cp *Checkpoint) OnCommit(fn func(stage string, seq int)) { cp.log.OnCommit(fn) }

// SetFullSync selects the durability mode. The default (off) commits
// with two page-cache writes, which survive process death — the
// pipeline's crash model — at microsecond cost per stage. Full sync
// fsyncs the appended record before the commit pointer is written and
// the pointer after it, so committed stages also survive kernel crashes
// and power loss, at fsync cost per commit.
func (cp *Checkpoint) SetFullSync(on bool) { cp.log.SetFullSync(on) }

// Close releases the checkpoint's file handle. The log stays usable: a
// later commit reopens it. Services that hold many finished jobs call
// this to bound open descriptors.
func (cp *Checkpoint) Close() error { return cp.log.Close() }

// WithCheckpoint attaches cp to the call: completed stages commit to
// the log, already-committed stages are restored from it (emitting one
// obs.Resume event each) instead of recomputed. A nil cp is a no-op.
func WithCheckpoint(cp *Checkpoint) Option {
	return func(c *config) { c.ckpt = cp }
}

// Digest returns a stable hex fingerprint of the result's deterministic
// content: the allocation vector and its objective decomposition, both
// makespans, the full schedule snapshot, the simulated traffic
// accounting, and the recovery trajectory. Every covered field is
// bit-exact under checkpoint resume, so a resumed run's digest equals
// the crash-free run's — the equality the service journals on job
// completion and the chaos suite checks across a SIGKILL/restart cycle.
// Wall-clock quantities and solver diagnostics are deliberately
// excluded.
func (r *Result) Digest() string {
	h := sha256.New()
	var buf [8]byte
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wi(len(r.Alloc.P))
	for _, p := range r.Alloc.P {
		wf(p)
	}
	wf(r.Alloc.Phi)
	wf(r.Predicted)
	wf(r.Actual)
	if r.Sched != nil {
		if payload, err := ckpt.EncodeSchedule(r.Sched); err == nil {
			h.Write(payload)
		}
	}
	if r.Sim != nil {
		wi(r.Sim.Messages)
		wi(r.Sim.NetworkBytes)
	}
	wi(r.RecoveryAttempts)
	for _, p := range r.FailedProcs {
		wi(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ckptActive reports whether a usable checkpoint is attached.
func (c *config) ckptActive() bool { return c.ckpt != nil && c.ckpt.log != nil }

// emit sends e to the call's observer under the usual nil guard.
func (c *config) emit(e obs.Event) {
	if c.observer != nil {
		c.observer.Observe(e)
	}
}

// ckptCommit commits a stage payload and emits the Checkpoint event.
func (c *config) ckptCommit(stage string, payload []byte) error {
	if err := c.ckpt.log.Commit(stage, payload); err != nil {
		return err
	}
	c.emit(obs.Checkpoint{Stage: stage, Seq: c.ckpt.log.Len() - 1, Bytes: len(payload)})
	return nil
}

// ckptBindRun binds the log to this run's identity: the first run
// commits a meta record; a resume validates it and refuses a log that
// belongs to a different job.
func (c *config) ckptBindRun(p *Program, mp Machine, procs int) error {
	if !c.ckptActive() {
		return nil
	}
	if data, _, ok := c.ckpt.log.Lookup(ckpt.StageMeta); ok {
		meta, err := ckpt.DecodeMeta(data)
		if err != nil {
			return err
		}
		return meta.Check(p.Name, procs, p.G.NumNodes(), mp)
	}
	payload, err := ckpt.EncodeMeta(ckpt.Meta{
		Program: p.Name, Procs: procs, Nodes: p.G.NumNodes(), Machine: mp,
	})
	if err != nil {
		return fmt.Errorf("paradigm: encode checkpoint meta: %w", err)
	}
	return c.ckptCommit(ckpt.StageMeta, payload)
}

// ckptDone commits the run outcome, or — when a done record already
// exists (a run resumed after its final commit) — validates this run's
// outcome against it: the last line of defense that resume was
// bit-identical.
func (c *config) ckptDone(res *Result) error {
	if !c.ckptActive() {
		return nil
	}
	d := ckpt.DoneState{
		Makespan:     res.Sim.Makespan,
		Messages:     res.Sim.Messages,
		NetworkBytes: res.Sim.NetworkBytes,
		Recovered:    res.Recovered,
		Attempts:     res.RecoveryAttempts,
	}
	if data, seq, ok := c.ckpt.log.Lookup(ckpt.StageDone); ok {
		prev, err := ckpt.DecodeDone(data)
		if err != nil {
			return err
		}
		if prev != d {
			return fmt.Errorf("%w: resumed run diverged from the committed outcome (makespan %v vs %v, messages %d vs %d)",
				ErrCheckpointMismatch, d.Makespan, prev.Makespan, d.Messages, prev.Messages)
		}
		c.emit(obs.Resume{Stage: ckpt.StageDone, Seq: seq})
		return nil
	}
	payload, err := ckpt.EncodeDone(d)
	if err != nil {
		return fmt.Errorf("paradigm: encode checkpoint outcome: %w", err)
	}
	return c.ckptCommit(ckpt.StageDone, payload)
}

// ckptSalvage commits one recovery attempt's salvage state, or — when
// the attempt was already committed by a killed run — validates that
// this run's recomputed salvage is bit-identical to the committed one
// (recovery is deterministic; a divergence is a real bug, not noise).
func (c *config) ckptSalvage(stage string, s ckpt.SalvageState) error {
	if data, seq, ok := c.ckpt.log.Lookup(stage); ok {
		prev, err := ckpt.DecodeSalvage(data)
		if err != nil {
			return err
		}
		if err := salvageEqual(prev, s); err != nil {
			return fmt.Errorf("%w: resumed recovery diverged at %s: %v", ErrCheckpointMismatch, stage, err)
		}
		c.emit(obs.Resume{Stage: stage, Seq: seq})
		return nil
	}
	payload, err := ckpt.EncodeSalvage(s)
	if err != nil {
		return fmt.Errorf("paradigm: encode salvage state: %w", err)
	}
	return c.ckptCommit(stage, payload)
}

// salvageEqual compares two salvage states bit-for-bit.
func salvageEqual(a, b ckpt.SalvageState) error {
	if a.Attempt != b.Attempt || a.Survivors != b.Survivors || len(a.Failed) != len(b.Failed) {
		return fmt.Errorf("attempt/survivors/failed differ")
	}
	for i := range a.Failed {
		if a.Failed[i] != b.Failed[i] {
			return fmt.Errorf("failed processor sets differ")
		}
	}
	if len(a.Arrays) != len(b.Arrays) {
		return fmt.Errorf("restored %d arrays, committed %d", len(b.Arrays), len(a.Arrays))
	}
	for name, am := range a.Arrays {
		bm, ok := b.Arrays[name]
		if !ok {
			return fmt.Errorf("array %q missing from recomputed salvage", name)
		}
		if am.Rows != bm.Rows || am.Cols != bm.Cols || len(am.Data) != len(bm.Data) {
			return fmt.Errorf("array %q shape differs", name)
		}
		for i := range am.Data {
			if am.Data[i] != bm.Data[i] {
				return fmt.Errorf("array %q differs at element %d", name, i)
			}
		}
	}
	return nil
}
