// Fault injection and failure-aware rescheduling: the public fault API
// and the recovery driver.
//
// The paper assumes a reliable CM-5 — every processor lives to the
// barrier and every message arrives. WithFaultPlan drops that
// assumption: a deterministic fault schedule (fail-stop deaths, message
// loss/duplication/delay, kernel stragglers) is interpreted by the
// simulator, and WithRecovery turns a halted run into a replanning
// problem. The driver salvages every array whose producer completed and
// whose blocks fully survive on non-failed processors, rebuilds the
// residual program with those arrays as cheap restore nodes, re-runs
// allocation and PSA on the surviving system size, regenerates MPMD
// code, and resumes. Salvage is bit-for-bit — restored blocks feed the
// same FP summation orders — so a recovered run verifies against the
// sequential reference exactly like an undisturbed one.
package paradigm

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"paradigm/internal/alloc"
	"paradigm/internal/ckpt"
	"paradigm/internal/codegen"
	"paradigm/internal/costmodel"
	"paradigm/internal/fault"
	"paradigm/internal/kernels"
	"paradigm/internal/obs"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
)

// Fault-model re-exports.
type (
	// FaultPlan is a deterministic fault schedule the simulator
	// interprets: fail-stop deaths, message faults, stragglers.
	FaultPlan = fault.Plan
	// ProcFail is one fail-stop processor death at a virtual time.
	ProcFail = fault.ProcFail
	// MsgFault is one message loss/duplication/delay, matched by global
	// send sequence number or codegen tag.
	MsgFault = fault.MsgFault
	// Straggler is a multiplicative kernel slowdown for one (node, proc).
	Straggler = fault.Straggler
	// FaultRandOptions shapes RandomFaultPlan's draws.
	FaultRandOptions = fault.RandOptions
	// HaltError is the simulator's classified stop: it wraps
	// ErrProcessorLost, ErrMessageLost or ErrDeadlock and carries the
	// partial machine state recovery replans from.
	HaltError = sim.HaltError
)

// Message fault kinds.
const (
	// FaultDrop discards the message after the send cost is paid.
	FaultDrop = fault.Drop
	// FaultDuplicate delivers a spurious second copy (discarded by tag
	// matching at one extra overhead).
	FaultDuplicate = fault.Duplicate
	// FaultDelay adds Extra seconds of network latency.
	FaultDelay = fault.Delay
)

// RandomFaultPlan builds a randomized-but-seeded fault schedule: the
// same seed and options always produce the same plan, which is what
// makes chaos runs reproducible.
func RandomFaultPlan(seed uint64, o FaultRandOptions) (*FaultPlan, error) {
	return fault.Rand(seed, o)
}

// WithFaultPlan attaches a fault schedule to Execute/Run calls. The
// simulator interprets it; a run it halts returns a *HaltError wrapping
// ErrProcessorLost, ErrMessageLost or ErrDeadlock. A nil or empty plan
// is a no-op, leaving the fault-free pipeline byte-identical.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *config) { c.faults = p }
}

// WithRecovery enables failure-aware rescheduling on RunContext: up to
// maxAttempts times, a halted simulation is salvaged (completed arrays
// restored from surviving blocks), replanned on the surviving
// processors, and resumed. Each attempt emits one obs.Recovery and one
// obs.Replan event. maxAttempts <= 0 disables recovery.
func WithRecovery(maxAttempts int) Option {
	return func(c *config) { c.recoverMax = maxAttempts }
}

// WithVirtualDeadline halts any simulated run whose virtual clock
// passes d seconds, with a full blocked-processor diagnosis — the
// watchdog bound for runs a fault has stretched beyond all
// plausibility. d <= 0 (the default) disables the bound.
func WithVirtualDeadline(d float64) Option {
	return func(c *config) { c.deadline = d }
}

// recoverRun drives failure-aware rescheduling after a halted
// simulation: salvage, residual-program construction, replanning on the
// survivors, and re-execution. The re-run carries the *residual* fault
// plan — processor deaths from the original schedule that had not yet
// fired, remapped onto the compacted survivor indexing and rebased to
// the re-run's fresh clock — so a second fault wave landing during or
// after salvage→replan halts the re-run and re-enters this loop
// (bounded by the retry budget) instead of being silently dropped or
// surfacing as a raw halt. Message faults and stragglers do not survive
// a replan: their coordinates (send sequence numbers, node ids) belong
// to the schedule that died with the first wave.
func recoverRun(ctx context.Context, p *Program, m Machine, model Model, src LoopSource, procs int, halt *sim.HaltError, c *config) (*Result, error) {
	curP, curProcs, curPlan := p, procs, c.faults
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		partial := halt.Partial
		survivors := curProcs - len(halt.Failed)
		if survivors < 1 {
			return nil, fmt.Errorf("paradigm: recovery impossible: %d of %d processors lost: %w",
				len(halt.Failed), curProcs, halt.Sentinel)
		}

		// Stably complete frontier. Dummy START/STOP nodes run no barrier
		// and produce nothing: vacuously done.
		done := append([]bool(nil), partial.NodeDone...)
		for id, spec := range curP.Specs {
			if spec.Kernel.Op == kernels.OpNone {
				done[id] = true
			}
		}
		frontier, err := sched.CompletedFrontier(curP.G, done)
		if err != nil {
			return nil, err
		}

		// Salvage every array whose producer is stably complete and whose
		// blocks fully survive outside the failed processors. Sorted names
		// keep the salvage order (and its events) deterministic.
		names := make([]string, 0, len(curP.Arrays))
		for name := range curP.Arrays {
			names = append(names, name)
		}
		sort.Strings(names)
		restored := map[string]*Matrix{}
		for _, name := range names {
			// Salvage can touch every block of every array: honour
			// cancellation per array, like the anneal loop does per stage.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			prod, ok := curP.Producer(name)
			if !ok || !frontier[prod] {
				continue
			}
			if salvaged, ok := partial.SalvageArray(name); ok {
				restored[name] = salvaged
			}
		}
		residual := 0
		for _, spec := range curP.Specs {
			if spec.Kernel.Op == kernels.OpNone {
				continue
			}
			if _, ok := restored[spec.Output]; !ok {
				residual++
			}
		}
		if c.observer != nil {
			c.observer.Observe(obs.Recovery{
				Attempt: attempt, Cause: halt.Sentinel.Error(),
				Failed: len(halt.Failed), Survivors: survivors,
				Restored: len(restored), Residual: residual,
			})
		}

		// Make the salvage durable (or, on a resumed run, validate that
		// the recomputed salvage matches the committed record bit for
		// bit — recovery is deterministic, so a divergence is a bug).
		if c.ckptActive() {
			if err := c.ckptSalvage(fmt.Sprintf("%s-%d", ckpt.StageSalvage, attempt), ckpt.SalvageState{
				Attempt: attempt, Survivors: survivors,
				Failed: append([]int(nil), halt.Failed...), Arrays: restored,
			}); err != nil {
				return nil, err
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		resProg, err := curP.Residual(restored, func(name string, k kernels.Kernel) (costmodel.LoopParams, error) {
			return src.Loop(name, k)
		})
		if err != nil {
			return nil, err
		}

		// Replan on the surviving system size. The allocator degrades
		// gracefully here regardless of the caller's setting — a recovery
		// that dies on a solver breakdown would defeat its purpose. A PB
		// tuned for the original size is dropped when it no longer fits.
		allocOpts := c.alloc
		allocOpts.FallbackHeuristic = true
		ar, err := alloc.SolveCtx(ctx, resProg.G, model, survivors, allocOpts)
		if err != nil {
			return nil, err
		}
		if c.observer != nil {
			c.observer.Observe(obs.Replan{Attempt: attempt, Stage: "recovery", Procs: survivors, Phi: ar.Phi})
		}
		schedOpts := c.sched
		if schedOpts.PB > survivors {
			schedOpts.PB = 0
		}
		s, err := sched.Run(resProg.G, model, ar.P, survivors, schedOpts)
		if err != nil {
			return nil, err
		}
		streams, err := codegen.Generate(resProg, s)
		if err != nil {
			return nil, err
		}
		// The residual schedule rebases to the latest death that fired:
		// the halt is diagnosed no earlier than the last fail-stop, and
		// pending deaths keep their spacing relative to it.
		rebase := 0.0
		for _, pr := range halt.Failed {
			if at, ok := curPlan.FailAt(pr); ok && at > rebase {
				rebase = at
			}
		}
		resPlan := curPlan.Residual(curProcs, halt.Failed, rebase)
		simRes, err := sim.RunCtx(ctx, resProg, streams, m.WithProcs(survivors), sim.Options{
			Observer: c.observer, Faults: resPlan, VirtualDeadline: c.deadline,
		})
		if err != nil {
			var h2 *sim.HaltError
			if attempt < c.recoverMax && errors.As(err, &h2) {
				halt, curP, curProcs, curPlan = h2, resProg, survivors, resPlan
				continue
			}
			return nil, err
		}
		return &Result{
			Alloc: ar, Sched: s, Sim: simRes,
			Predicted: s.Makespan, Actual: simRes.Makespan,
			Recovered: true, RecoveryAttempts: attempt,
			FailedProcs: append([]int(nil), halt.Failed...),
		}, nil
	}
}
