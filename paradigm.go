// Package paradigm reproduces "A Convex Programming Approach for
// Exploiting Data and Functional Parallelism on Distributed Memory
// Multicomputers" (Ramaswamy, Sapatnekar, Banerjee — ICPP 1994), the
// allocation-and-scheduling engine of the PARADIGM compiler.
//
// The pipeline mirrors the paper's five steps:
//
//  1. Represent the program as a Macro Dataflow Graph (Graph / Program):
//     nodes are loop nests with Amdahl processing costs, edges are
//     precedence constraints carrying 1D/2D data transfers.
//  2. Calibrate the cost models on the target machine by the
//     training-sets method (Calibrate → Calibration, Tables 1-2).
//  3. Allocate processors by convex programming (Allocate): minimize
//     Φ = max(A_p, C_p) over continuous allocations — globally optimal
//     thanks to the posynomial structure of the cost models.
//  4. Schedule with the Prioritized Scheduling Algorithm (BuildSchedule):
//     power-of-two rounding, the Corollary-1 processor bound PB, and
//     lowest-EST list scheduling, with the Theorem 1-3 quality bounds.
//  5. Generate true MPMD per-processor programs and execute them
//     (Execute) — here on a deterministic simulated CM-5 that moves real
//     data, so results are verifiable end to end.
//
// Run performs steps 3-5 in one call; RunSPMD produces the pure
// data-parallel baseline the paper's Figure 8 compares against.
package paradigm

import (
	"context"
	"fmt"

	"paradigm/internal/alloc"
	"paradigm/internal/bounds"
	"paradigm/internal/costmodel"
	"paradigm/internal/dist"
	"paradigm/internal/frontend"
	"paradigm/internal/machine"
	"paradigm/internal/matrix"
	"paradigm/internal/mdg"
	"paradigm/internal/prog"
	"paradigm/internal/programs"
	"paradigm/internal/sched"
	"paradigm/internal/sim"
	"paradigm/internal/trainsets"
)

// Re-exported core types. The aliases give external users full access to
// the library's data model through this package alone.
type (
	// Machine is a target machine profile (ground-truth simulator costs).
	Machine = machine.Params
	// Calibration holds fitted cost-model parameters for one machine.
	Calibration = trainsets.Calibration
	// Model is the fitted analytic cost model used by the allocator and
	// scheduler.
	Model = costmodel.Model
	// LoopParams are Amdahl processing-cost parameters (α, τ).
	LoopParams = costmodel.LoopParams
	// TransferParams are the t_ss/t_ps/t_sr/t_pr/t_n messaging costs.
	TransferParams = costmodel.TransferParams
	// Graph is a Macro Dataflow Graph.
	Graph = mdg.Graph
	// Node is one MDG node (a loop nest).
	Node = mdg.Node
	// NodeID indexes a node in its Graph.
	NodeID = mdg.NodeID
	// Transfer describes one array moved along an MDG edge.
	Transfer = mdg.Transfer
	// Program binds an MDG to kernels, arrays and distributions.
	Program = prog.Program
	// ProgramBuilder assembles a Program incrementally.
	ProgramBuilder = prog.Builder
	// NodeSpec describes one program node's computation.
	NodeSpec = prog.NodeSpec
	// Allocation is a convex-programming allocation result.
	Allocation = alloc.Result
	// Schedule is a PSA schedule.
	Schedule = sched.Schedule
	// ScheduleOptions tunes the PSA pipeline.
	ScheduleOptions = sched.Options
	// SimResult is a simulated machine run.
	SimResult = sim.Result
	// Matrix is a dense row-major float64 matrix.
	Matrix = matrix.Matrix
)

// Transfer kinds (Figure 4 regimes plus the grid extension).
const (
	// Transfer1D is the ROW2ROW / COL2COL regime.
	Transfer1D = mdg.Transfer1D
	// Transfer2D is the ROW2COL / COL2ROW regime.
	Transfer2D = mdg.Transfer2D
	// TransferG2L, TransferL2G and TransferG2G are the blocked-2D
	// (grid) redistribution regimes of the extension.
	TransferG2L = mdg.TransferG2L
	// TransferL2G moves a linearly distributed array onto a grid.
	TransferL2G = mdg.TransferL2G
	// TransferG2G moves between two grids.
	TransferG2G = mdg.TransferG2G
)

// Distribution axes for NodeSpec.Axis.
const (
	// ByRow distributes contiguous row blocks.
	ByRow = dist.ByRow
	// ByCol distributes contiguous column blocks.
	ByCol = dist.ByCol
	// ByGrid distributes over a near-square processor grid (the paper's
	// general-distribution extension).
	ByGrid = dist.ByGrid
)

// NewCM5 returns the simulated Thinking Machines CM-5 profile at the
// given system size — the paper's testbed.
func NewCM5(procs int) Machine { return machine.CM5(procs) }

// NewParagon returns the Intel-Paragon-like profile: faster processors
// and network, and a genuine per-byte network transit (t_n > 0), used by
// the portability experiment.
func NewParagon(procs int) Machine { return machine.Paragon(procs) }

// NewProgramBuilder starts an empty program.
func NewProgramBuilder(name string) *ProgramBuilder { return prog.NewBuilder(name) }

// Calibrate runs the training-sets calibration (Section 4) on a machine
// profile: the transfer sweep immediately, loop fits lazily per kernel.
// It is the positional form of CalibrateContext.
func Calibrate(m Machine) (*Calibration, error) {
	return CalibrateContext(context.Background(), m)
}

// Allocate solves the convex program of Section 2 for graph g on a
// procs-processor system, returning continuous allocations and Φ. It is
// the positional form of AllocateContext.
func Allocate(g *Graph, model Model, procs int) (Allocation, error) {
	return AllocateContext(context.Background(), g, model, procs)
}

// AllocateSPMD returns the pure data-parallel allocation (every node on
// all processors) with its exact Φ.
func AllocateSPMD(g *Graph, model Model, procs int) (Allocation, error) {
	return alloc.SPMD(g, model, procs)
}

// BuildSchedule runs the PSA of Section 3 on a continuous allocation:
// rounding, bounding (Corollary 1 unless opts.PB overrides), weight
// recomputation and lowest-EST list scheduling.
//
// Deprecated: BuildSchedule is the positional pre-observability surface.
// Use BuildScheduleContext with WithScheduleOptions, which adds
// cancellation and PSA decision events:
//
//	s, err := paradigm.BuildScheduleContext(ctx, g, model, p, procs,
//	    paradigm.WithScheduleOptions(opts))
func BuildSchedule(g *Graph, model Model, allocation []float64, procs int, opts ScheduleOptions) (*Schedule, error) {
	return BuildScheduleContext(context.Background(), g, model, allocation, procs, WithScheduleOptions(opts))
}

// ScheduleSPMD builds the naive all-processors baseline schedule.
func ScheduleSPMD(g *Graph, model Model, procs int) (*Schedule, error) {
	return sched.SPMD(g, model, procs)
}

// Execute lowers the program under the schedule into per-processor MPMD
// instruction streams and runs them on the simulated machine, moving real
// data. It is the positional form of ExecuteContext.
func Execute(p *Program, s *Schedule, m Machine) (*SimResult, error) {
	return ExecuteContext(context.Background(), p, s, m)
}

// OptimalPB returns Corollary 1's processor bound for a system size,
// with the Theorem 3 quality factor it guarantees.
func OptimalPB(procs int) (pb int, factor float64, err error) {
	return bounds.OptimalPB(procs)
}

// TheoremBounds reports the Theorem 1, 2 and 3 factors for a (p, PB)
// pair.
func TheoremBounds(procs, pb int) (t1, t2, t3 float64, err error) {
	if t1, err = bounds.Theorem1Factor(procs, pb); err != nil {
		return
	}
	if t2, err = bounds.Theorem2Factor(procs, pb); err != nil {
		return
	}
	t3, err = bounds.Theorem3Factor(procs, pb)
	return
}

// Result is one end-to-end pipeline outcome.
type Result struct {
	// Alloc is the continuous allocation and its Φ.
	Alloc Allocation
	// Sched is the PSA schedule; Sched.Makespan is T_psa, the model's
	// predicted finish time.
	Sched *Schedule
	// Sim is the simulated execution; Sim.Makespan is the actual time.
	Sim *SimResult
	// Predicted and Actual are the two makespans.
	Predicted, Actual float64
	// Recovered reports that the run survived a fault through
	// failure-aware rescheduling; RecoveryAttempts counts the replans and
	// FailedProcs lists the processors lost in the final halted run.
	// Alloc/Sched/Sim then describe the recovery run on the survivors.
	Recovered        bool
	RecoveryAttempts int
	FailedProcs      []int
}

// Run executes the full paper pipeline — allocate, schedule, generate
// MPMD code, simulate — for a program on a machine at the given system
// size. The calibration provides the fitted cost model. It is the
// positional form of RunContext.
func Run(p *Program, m Machine, cal *Calibration, procs int) (*Result, error) {
	return RunContext(context.Background(), p, m, cal, procs)
}

// RunSPMD executes the pure data-parallel baseline end to end. It is the
// positional form of RunSPMDContext.
func RunSPMD(p *Program, m Machine, cal *Calibration, procs int) (*Result, error) {
	return RunSPMDContext(context.Background(), p, m, cal, procs)
}

// Verify checks every simulated array against the program's sequential
// reference, returning the worst absolute deviation.
func Verify(p *Program, res *SimResult) (float64, error) {
	ref, err := p.ReferenceRun()
	if err != nil {
		return 0, err
	}
	worst := 0.0
	for name := range p.Arrays {
		got, err := res.Gather(name)
		if err != nil {
			return 0, err
		}
		d, err := matrix.MaxAbsDiff(got, ref[name])
		if err != nil {
			return 0, err
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

// --- Built-in test programs -------------------------------------------------

// ComplexMatMul builds the paper's complex matrix multiplication program
// (Figure 6 left) for n×n complex matrices. Loop costs come from any
// machine model — a *Calibration or a MachineBackend.
func ComplexMatMul(n int, src LoopSource) (*Program, error) {
	return programs.ComplexMatMul(n, src)
}

// ComplexMatMulGrid builds the complex matrix multiply with the four
// multiplies on grid (blocked-2D) distributions — the general-
// distribution extension.
func ComplexMatMulGrid(n int, src LoopSource) (*Program, error) {
	return programs.ComplexMatMulLayout(n, src, true)
}

// Strassen builds the paper's Strassen program (Figure 6 right) for n×n
// matrices (n even).
func Strassen(n int, src LoopSource) (*Program, error) {
	return programs.Strassen(n, src)
}

// StrassenRecursive builds Strassen's multiplication unfolded `depth`
// levels at the MDG level (depth 1 matches the paper's program; depth 2
// yields a 49-multiply MDG). n must be divisible by 2^depth.
func StrassenRecursive(n, depth int, src LoopSource) (*Program, error) {
	return programs.StrassenRecursive(n, depth, src)
}

// SyntheticPipeline builds a width×depth pipeline workload exposing
// functional parallelism.
func SyntheticPipeline(n, width, depth int, src LoopSource) (*Program, error) {
	return programs.SyntheticPipeline(n, width, depth, src)
}

// FigureOneMDG returns the 3-node motivating example of Section 1.2.
func FigureOneMDG() *Graph { return programs.FigureOneMDG() }

// CompileSource compiles a matrix-program source text (see
// internal/frontend for the language) into an executable Program,
// pricing each loop shape through any machine model.
func CompileSource(name, src string, m LoopSource) (*Program, error) {
	return frontend.Compile(name, src, m)
}

// Speedup is a convenience: serial time over parallel time; it errors on
// non-positive inputs.
func Speedup(serial, parallel float64) (float64, error) {
	if serial <= 0 || parallel <= 0 {
		return 0, fmt.Errorf("paradigm: invalid times %v / %v", serial, parallel)
	}
	return serial / parallel, nil
}
