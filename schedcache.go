// The pipeline-level schedule cache (DESIGN.md §15): WithScheduleCache
// memoizes the whole planning half of the pipeline — the governed convex
// allocation AND the rounded PSA schedule — keyed by the
// relabel-invariant canonical MDG hash, the cost-model fingerprint, the
// solve- and schedule-shaping options, and the processor count. An exact
// hit replays both byte-identically (the downstream codegen and
// simulation stages are deterministic functions of the schedule, so the
// whole Result digest matches a cold solve) without touching the solver
// or the PSA. There is deliberately no near-hit seeding — exact replay
// or nothing — so cached results remain pure functions of the request,
// the same purity contract AllocOptions.CacheExactOnly gives the
// allocation cache.
//
// Precedence against the crash-safety surface: a checkpoint that already
// holds a planning-stage record wins over the cache — resume must replay
// the journaled run, not whatever the cache holds today. On a cache hit
// with a fresh checkpoint attached, the replayed stages are committed to
// the log exactly as a cold solve would commit them, so a later resume
// behaves identically.

package paradigm

import (
	"context"
	"fmt"
	"math"
	"strings"

	"paradigm/internal/alloc"
	"paradigm/internal/ckpt"
	"paradigm/internal/mdg"
	"paradigm/internal/obs"
	"paradigm/internal/sched"
	"paradigm/internal/schedcache"
)

// ScheduleCache is the bounded, sharded LRU memoizing full
// allocate→schedule pipeline results. Share one across calls via
// WithScheduleCache; all methods are safe for concurrent use.
type ScheduleCache = schedcache.Cache

// SchedCacheEvent reports one schedule-cache lookup ("hit"/"miss").
type SchedCacheEvent = obs.SchedCache

// BackendSchedCache is the pseudo-backend reported (via the AllocDone
// event and Allocation.Backend) when an allocate→schedule pair replays
// from the schedule cache without solving.
const BackendSchedCache = alloc.Backend("sched-cache")

// NewScheduleCache returns an empty schedule cache holding at most
// capacity entries spread over the given number of shards (pass 1 for an
// unsharded cache; each shard holds at least one entry).
func NewScheduleCache(capacity, shards int) *ScheduleCache {
	return schedcache.New(capacity, shards)
}

// WithScheduleCache attaches a pipeline-level schedule cache to the
// call: RunContext and AllocateAndScheduleContext consult it before the
// allocation stage and fill it after the scheduling stage.
func WithScheduleCache(sc *ScheduleCache) Option {
	return func(c *config) { c.schedCache = sc }
}

// scheduleCacheKey derives the exact cache key. It mirrors the
// allocation cache's key fields — canonical graph hash, transfer
// fingerprint, every solve-shaping option — and appends the
// schedule-shaping options and the processor count, so any knob that
// could change the stored schedule keys a distinct entry. The "|xo"
// discriminator keeps exact-only and seedable solves apart for the same
// reason the allocation cache does: a seeded solve's basin must never
// replay to an exact-only caller.
func scheduleCacheKey(hash string, model Model, procs int, ao AllocOptions, so ScheduleOptions) string {
	var b strings.Builder
	b.WriteString(hash)
	b.WriteByte('|')
	t := model.Transfer
	for _, v := range []float64{
		t.Tss, t.Tps, t.Tsr, t.Tpr, t.Tn,
		ao.RaceTol,
		ao.Anneal.StartTemp, ao.Anneal.EndTemp, ao.Anneal.Decay,
	} {
		fmt.Fprintf(&b, "%016x", math.Float64bits(v))
	}
	fmt.Fprintf(&b, "|ms%d|it%d|b%s", max(1, ao.MultiStart), ao.Anneal.Inner.MaxIter, ao.Backend)
	if ao.IgnoreTransfers {
		b.WriteString("|nt")
	}
	if ao.CacheExactOnly {
		b.WriteString("|xo")
	}
	fmt.Fprintf(&b, "|pb%d|pol%d", so.PB, so.Policy)
	if so.SkipRounding {
		b.WriteString("|sr")
	}
	fmt.Fprintf(&b, "|p%d", procs)
	return b.String()
}

// entryFromPlan permutes a solved plan into canonical order for storage:
// perm[i] is the canonical rank of original node i.
func entryFromPlan(ar Allocation, s *Schedule, perm []mdg.NodeID) schedcache.Entry {
	e := schedcache.Entry{
		PCanon:     make([]float64, len(ar.P)),
		Phi:        ar.Phi,
		Ap:         ar.Ap,
		Cp:         ar.Cp,
		AllocCanon: make([]int, len(s.Alloc)),
		Nodes:      make([]schedcache.NodeSched, len(s.Entries)),
		ProcsTotal: s.ProcsTotal,
		PB:         s.PB,
		Makespan:   s.Makespan,
		Policy:     uint8(s.Policy),
	}
	for i, rank := range perm {
		e.PCanon[rank] = ar.P[i]
		e.AllocCanon[rank] = s.Alloc[i]
		ent := s.Entries[i]
		e.Nodes[rank] = schedcache.NodeSched{Start: ent.Start, Finish: ent.Finish, Procs: ent.Procs}
	}
	return e
}

// planFromEntry replays a cached plan into the querying graph's node
// order. Solver diagnostics are zero — nothing was solved.
func planFromEntry(e schedcache.Entry, perm []mdg.NodeID) (Allocation, *Schedule) {
	n := len(perm)
	ar := Allocation{
		P: make([]float64, n), Phi: e.Phi, Ap: e.Ap, Cp: e.Cp,
		Backend: BackendSchedCache, CacheOutcome: "hit",
	}
	s := &Schedule{
		ProcsTotal: e.ProcsTotal,
		PB:         e.PB,
		Alloc:      make([]int, n),
		Entries:    make([]sched.Entry, n),
		Makespan:   e.Makespan,
		Policy:     sched.Policy(e.Policy),
	}
	for i, rank := range perm {
		ar.P[i] = e.PCanon[rank]
		s.Alloc[i] = e.AllocCanon[rank]
		ns := e.Nodes[rank]
		s.Entries[i] = sched.Entry{Node: mdg.NodeID(i), Start: ns.Start, Finish: ns.Finish, Procs: ns.Procs}
	}
	return ar, s
}

// planCkptResume reports whether the attached checkpoint already holds a
// planning-stage record; the cache must then stand aside and let the
// normal stages resume from the log.
func (c *config) planCkptResume() bool {
	if !c.ckptActive() {
		return false
	}
	if _, _, ok := c.ckpt.log.Lookup(ckpt.StageAlloc); ok {
		return true
	}
	_, _, ok := c.ckpt.log.Lookup(ckpt.StageSched)
	return ok
}

// planStages is the cached planning half of the pipeline shared by
// RunContext and AllocateAndScheduleContext: schedule-cache lookup, the
// governed allocation and PSA stages on a miss, cache fill on success.
func (c *config) planStages(ctx context.Context, g *Graph, model Model, procs int) (Allocation, *Schedule, error) {
	if c.schedCache == nil || c.planCkptResume() {
		return c.planSolve(ctx, g, model, procs, nil, "")
	}
	hash, perm, err := g.CanonicalHash()
	if err != nil {
		// An uncanonicalizable graph fails validation inside the solver
		// with a properly typed error; run the stages uncached.
		return c.planSolve(ctx, g, model, procs, nil, "")
	}
	key := scheduleCacheKey(hash, model, procs, c.alloc, c.sched)
	if e, ok := c.schedCache.Get(key); ok && len(e.PCanon) == len(perm) {
		c.emit(obs.SchedCache{Outcome: "hit"})
		ar, s := planFromEntry(e, perm)
		// The replay bypasses SolveCtx, so report the completed
		// allocation here under the pseudo-backend — latency observers
		// and the solve counters keep working.
		c.emit(obs.AllocDone{Backend: string(BackendSchedCache), Phi: ar.Phi})
		// Commit the replayed stages exactly as a cold solve would, so a
		// crash after this point resumes from the WAL as usual.
		if _, cerr := c.allocCommit(ar, nil); cerr != nil {
			return Allocation{}, nil, cerr
		}
		if cerr := c.schedCommit(s); cerr != nil {
			return Allocation{}, nil, cerr
		}
		return ar, s, nil
	}
	c.emit(obs.SchedCache{Outcome: "miss"})
	return c.planSolve(ctx, g, model, procs, perm, key)
}

// planSolve runs the governed allocation and PSA stages, filling the
// schedule cache when a key was derived. Breaker-degraded heuristic
// allocations are never cached: they depend on shared breaker state, not
// just the request, and a later identical request with a healthy solver
// must not replay them.
func (c *config) planSolve(ctx context.Context, g *Graph, model Model, procs int, perm []mdg.NodeID, key string) (Allocation, *Schedule, error) {
	ar, err := c.allocStage(ctx, g, model, procs)
	if err != nil {
		return Allocation{}, nil, err
	}
	s, err := c.schedStage(ctx, g, model, ar.P, procs)
	if err != nil {
		return Allocation{}, nil, err
	}
	if key != "" && ar.Backend != alloc.BackendHeuristic {
		c.schedCache.Put(key, entryFromPlan(ar, s, perm))
	}
	return ar, s, nil
}

// AllocateAndScheduleContext runs the planning half of the pipeline —
// the governed convex allocation followed by the PSA — as one cached
// unit: with a WithScheduleCache cache attached, an exact hit replays
// both stages byte-identically without solving, and a miss fills the
// cache for the next identical request. Without a cache it is equivalent
// to AllocateContext followed by BuildScheduleContext. The full
// governance surface of both stages applies (budgets, retry, breaker,
// checkpoint precedence).
func AllocateAndScheduleContext(ctx context.Context, g *Graph, model Model, procs int, opts ...Option) (ar Allocation, s *Schedule, err error) {
	defer guardStage("plan", &err)
	c := newConfig(opts)
	return c.planStages(ctx, g, c.allocModel(model), procs)
}
